package freeride

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// sumSpec reduces every value of the dataset into a single cell.
func sumSpec() Spec {
	return Spec{
		Object: ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			var s float64
			for _, v := range a.Data {
				s += v
			}
			a.Accumulate(0, 0, s)
			return nil
		},
	}
}

func seqSum(m *dataset.Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

func TestRunSumMatchesSequential(t *testing.T) {
	m := dataset.UniformMatrix(10000, 4, 1, 0, 1)
	src := dataset.NewMemorySource(m)
	want := seqSum(m)
	for _, threads := range []int{1, 2, 4, 8} {
		e := New(Config{Threads: threads, SplitRows: 128})
		res, err := e.Run(sumSpec(), src)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Object.Get(0, 0)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("threads=%d: got %v want %v", threads, got, want)
		}
		if res.Stats.Threads != threads {
			t.Fatalf("stats threads = %d", res.Stats.Threads)
		}
		if res.Stats.Splits != (10000+127)/128 {
			t.Fatalf("splits = %d", res.Stats.Splits)
		}
	}
}

func TestRunAllStrategiesAndSchedulers(t *testing.T) {
	m := dataset.UniformMatrix(5000, 3, 2, -1, 1)
	src := dataset.NewMemorySource(m)
	want := seqSum(m)
	for _, st := range robj.Strategies() {
		for _, pol := range sched.Policies() {
			e := New(Config{Threads: 4, Strategy: st, Scheduler: pol, SplitRows: 100})
			res, err := e.Run(sumSpec(), src)
			if err != nil {
				t.Fatalf("%v/%v: %v", st, pol, err)
			}
			if got := res.Object.Get(0, 0); math.Abs(got-want) > 1e-6 {
				t.Fatalf("%v/%v: got %v want %v", st, pol, got, want)
			}
		}
	}
}

func TestRunFromFileSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.frds")
	m := dataset.UniformMatrix(2000, 6, 3, 0, 10)
	if err := dataset.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	e := New(Config{Threads: 4, SplitRows: 64})
	res, err := e.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Object.Get(0, 0), seqSum(m); math.Abs(got-want) > 1e-6 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestRunHistogramGroups(t *testing.T) {
	// Group instances by floor(value) into a 10-bucket histogram; checks
	// multi-group accumulation and the Begin/Row helpers.
	m := dataset.NewMatrix(1000, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % 10)
	}
	spec := Spec{
		Object: ObjectSpec{Groups: 10, Elems: 1, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				a.Accumulate(int(a.Row(i)[0]), 0, 1)
			}
			return nil
		},
	}
	e := New(Config{Threads: 4, SplitRows: 37})
	res, err := e.Run(spec, dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 10; g++ {
		if got := res.Object.Get(g, 0); got != 100 {
			t.Fatalf("bucket %d = %v, want 100", g, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	src := dataset.NewMemorySource(dataset.UniformMatrix(10, 1, 1, 0, 1))
	e := New(Config{Threads: 2})
	if _, err := e.Run(Spec{Object: ObjectSpec{Groups: 1, Elems: 1}}, src); !errors.Is(err, ErrNoReduction) {
		t.Fatalf("want ErrNoReduction, got %v", err)
	}
	if _, err := e.Run(sumSpec(), nil); err == nil {
		t.Fatal("nil source: want error")
	}
	bad := sumSpec()
	bad.Object.Groups = 0
	if _, err := e.Run(bad, src); err == nil {
		t.Fatal("bad object shape: want error")
	}
}

func TestReductionErrorPropagates(t *testing.T) {
	src := dataset.NewMemorySource(dataset.UniformMatrix(1000, 1, 1, 0, 1))
	boom := errors.New("boom")
	spec := Spec{
		Object: ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			if a.Begin > 100 {
				return boom
			}
			return nil
		},
	}
	e := New(Config{Threads: 4, SplitRows: 10})
	if _, err := e.Run(spec, src); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestCombineAndFinalizeHooks(t *testing.T) {
	src := dataset.NewMemorySource(dataset.UniformMatrix(100, 1, 1, 1, 2))
	combined, finalized := false, false
	spec := sumSpec()
	spec.Combine = func(o *robj.Object) error {
		combined = true
		if !o.Merged() {
			t.Error("Combine should see a merged object")
		}
		return nil
	}
	spec.Finalize = func(r *Result) error {
		finalized = true
		return nil
	}
	e := New(Config{Threads: 2})
	if _, err := e.Run(spec, src); err != nil {
		t.Fatal(err)
	}
	if !combined || !finalized {
		t.Fatalf("combined=%v finalized=%v", combined, finalized)
	}
	// Hook errors propagate.
	spec.Combine = func(o *robj.Object) error { return errors.New("combine fail") }
	if _, err := e.Run(spec, src); err == nil || err.Error() != "combine fail" {
		t.Fatalf("combine error: %v", err)
	}
	spec.Combine = nil
	spec.Finalize = func(r *Result) error { return errors.New("finalize fail") }
	if _, err := e.Run(spec, src); err == nil || err.Error() != "finalize fail" {
		t.Fatalf("finalize error: %v", err)
	}
}

func TestCustomSplitterAndValidation(t *testing.T) {
	m := dataset.UniformMatrix(100, 1, 1, 0, 1)
	src := dataset.NewMemorySource(m)
	spec := sumSpec()
	// A valid custom splitter with uneven chunks.
	spec.Splitter = func(total, units int) []sched.Chunk {
		return []sched.Chunk{{Begin: 0, End: 10}, {Begin: 10, End: 95}, {Begin: 95, End: 100}}
	}
	e := New(Config{Threads: 3})
	res, err := e.Run(spec, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Splits != 3 {
		t.Fatalf("splits = %d", res.Stats.Splits)
	}
	if got := res.Object.Get(0, 0); math.Abs(got-seqSum(m)) > 1e-9 {
		t.Fatal("custom splitter wrong sum")
	}
	// Splitters with gaps, overlaps, or wrong coverage are rejected.
	badSplitters := []func(int, int) []sched.Chunk{
		func(total, _ int) []sched.Chunk { return []sched.Chunk{{Begin: 0, End: 50}} },
		func(total, _ int) []sched.Chunk {
			return []sched.Chunk{{Begin: 0, End: 60}, {Begin: 50, End: 100}}
		},
		func(total, _ int) []sched.Chunk {
			return []sched.Chunk{{Begin: 0, End: 50}, {Begin: 60, End: 100}}
		},
		func(total, _ int) []sched.Chunk { return []sched.Chunk{{Begin: 0, End: 101}} },
	}
	for i, bad := range badSplitters {
		spec.Splitter = bad
		if _, err := e.Run(spec, src); err == nil {
			t.Fatalf("bad splitter %d accepted", i)
		}
	}
}

func TestDefaultSplitter(t *testing.T) {
	if got := DefaultSplitter(0, 4); got != nil {
		t.Fatal("empty input should produce no splits")
	}
	chunks := DefaultSplitter(10, 3)
	if len(chunks) != 3 {
		t.Fatalf("want 3 chunks, got %d", len(chunks))
	}
	if err := validateSplits(chunks, 10); err != nil {
		t.Fatal(err)
	}
	// More units than rows collapses to one chunk per row.
	chunks = DefaultSplitter(3, 10)
	if len(chunks) != 3 {
		t.Fatalf("want 3 chunks, got %d", len(chunks))
	}
	// Non-positive units defaults to 1.
	chunks = DefaultSplitter(5, 0)
	if len(chunks) != 1 || chunks[0].Len() != 5 {
		t.Fatalf("chunks = %+v", chunks)
	}
}

func TestGlobalCombine(t *testing.T) {
	m := dataset.UniformMatrix(100, 2, 5, 0, 1)
	src := dataset.NewMemorySource(m)
	e := New(Config{Threads: 2})
	r1, err := e.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := GlobalCombine([]*Result{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Object.Get(0, 0), 2*seqSum(m); math.Abs(got-want) > 1e-6 {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := GlobalCombine(nil); err == nil {
		t.Fatal("empty GlobalCombine: want error")
	}
}

func TestConfigDefaults(t *testing.T) {
	e := New(Config{})
	cfg := e.Config()
	if cfg.Threads < 1 || cfg.SplitRows != 4096 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{SplitTime: 1, ReduceTime: 2, CombineTime: 3, FinalizeTime: 4}
	if s.Total() != 10 {
		t.Fatalf("Total = %v", s.Total())
	}
}

// Property (the paper's core invariant, §III-A): the reduction result is
// independent of thread count, split size, scheduling policy, and sharing
// strategy, for integer-valued data where float addition is exact.
func TestPropertyOrderIndependence(t *testing.T) {
	f := func(seed int64, rowsRaw uint16, threadsRaw, splitRaw uint8, polRaw, stRaw uint8) bool {
		rows := int(rowsRaw%2000) + 1
		threads := int(threadsRaw%8) + 1
		splitRows := int(splitRaw%200) + 1
		pol := sched.Policies()[int(polRaw)%len(sched.Policies())]
		st := robj.Strategies()[int(stRaw)%len(robj.Strategies())]

		rng := rand.New(rand.NewSource(seed))
		m := dataset.NewMatrix(rows, 2)
		for i := range m.Data {
			m.Data[i] = float64(rng.Intn(1000))
		}
		want := seqSum(m)
		e := New(Config{Threads: threads, SplitRows: splitRows, Scheduler: pol, Strategy: st})
		res, err := e.Run(sumSpec(), dataset.NewMemorySource(m))
		if err != nil {
			return false
		}
		return res.Object.Get(0, 0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

func TestUserManagedLocalState(t *testing.T) {
	// A "keep the 3 smallest values" reduction — inexpressible with cell
	// ops, natural with a user-managed reduction object.
	m := dataset.NewMatrix(1000, 1)
	for i := range m.Data {
		m.Data[i] = float64((i*7919 + 13) % 1000)
	}
	keep := 3
	insert := func(best []float64, v float64) []float64 {
		best = append(best, v)
		sort.Float64s(best)
		if len(best) > keep {
			best = best[:keep]
		}
		return best
	}
	spec := Spec{
		LocalInit: func() any { return []float64(nil) },
		Reduction: func(a *ReductionArgs) error {
			best := a.Local.([]float64)
			for i := 0; i < a.NumRows; i++ {
				best = insert(best, a.Row(i)[0])
			}
			a.Local = best
			return nil
		},
		LocalCombine: func(dst, src any) any {
			best := dst.([]float64)
			for _, v := range src.([]float64) {
				best = insert(best, v)
			}
			return best
		},
	}
	// NOTE: Reduction reassigns a.Local so the next split sees the grown
	// slice; engine must hand the same args struct to every split.
	for _, threads := range []int{1, 4} {
		e := New(Config{Threads: threads, SplitRows: 64})
		res, err := e.Run(spec, dataset.NewMemorySource(m))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Local.([]float64)
		if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Fatalf("threads=%d: got %v", threads, got)
		}
		if res.Object != nil {
			t.Fatal("no cell object was declared")
		}
	}
}

func TestLocalStateValidation(t *testing.T) {
	src := dataset.NewMemorySource(dataset.NewMatrix(4, 1))
	e := New(Config{Threads: 2})
	// LocalInit without LocalCombine.
	spec := Spec{
		LocalInit: func() any { return 0 },
		Reduction: func(a *ReductionArgs) error { return nil },
	}
	if _, err := e.Run(spec, src); err == nil {
		t.Fatal("missing LocalCombine: want error")
	}
	// Neither object shape nor local state.
	spec = Spec{Reduction: func(a *ReductionArgs) error { return nil }}
	if _, err := e.Run(spec, src); err == nil {
		t.Fatal("no reduction object at all: want error")
	}
	// Accumulate without a cell object panics with a clear message.
	spec = Spec{
		LocalInit:    func() any { return 0 },
		LocalCombine: func(dst, src any) any { return dst },
		Reduction: func(a *ReductionArgs) error {
			defer func() {
				if recover() == nil {
					t.Error("Accumulate without object should panic")
				}
			}()
			a.Accumulate(0, 0, 1)
			return nil
		},
	}
	if _, err := e.Run(spec, src); err != nil {
		t.Fatal(err)
	}
}

func TestRunInto(t *testing.T) {
	m := dataset.UniformMatrix(1000, 1, 9, 0, 1)
	src := dataset.NewMemorySource(m)
	e := New(Config{Threads: 2, SplitRows: 100})
	first, err := e.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Object.Get(0, 0)
	// Reuse across several passes: same answer, same object.
	obj := first.Object
	for pass := 0; pass < 3; pass++ {
		res, err := e.RunInto(sumSpec(), src, obj)
		if err != nil {
			t.Fatal(err)
		}
		if res.Object != obj {
			t.Fatal("RunInto should reuse the given object")
		}
		if got := res.Object.Get(0, 0); got != want {
			t.Fatalf("pass %d: got %v want %v", pass, got, want)
		}
	}
	// Mismatches are rejected.
	if _, err := e.RunInto(sumSpec(), src, nil); err == nil {
		t.Fatal("nil reuse: want error")
	}
	other := sumSpec()
	other.Object.Elems = 2
	if _, err := e.RunInto(other, src, obj); err == nil {
		t.Fatal("shape mismatch: want error")
	}
	e2 := New(Config{Threads: 4})
	if _, err := e2.RunInto(sumSpec(), src, obj); err == nil {
		t.Fatal("worker-count mismatch: want error")
	}
}
