package freeride

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// fusedHistSpecs returns a per-element spec and its fused (BlockReduction)
// equivalent computing the same histogram: cell (g, 0) counts rows whose
// first feature hashes to g, cell (g, 1) sums their second feature.
func fusedHistSpecs(groups int) (elem, fused Spec) {
	object := ObjectSpec{Groups: groups, Elems: 2, Op: robj.OpAdd}
	body := func(row []float64, accumulate func(g, e int, v float64)) {
		g := int(row[0]) % groups
		if g < 0 {
			g += groups
		}
		accumulate(g, 0, 1)
		accumulate(g, 1, row[1])
	}
	elem = Spec{
		Object: object,
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				body(a.Row(i), a.Accumulate)
			}
			return nil
		},
	}
	fused = Spec{
		Object: object,
		BlockReduction: func(a *BlockArgs) error {
			for i := 0; i < a.NumRows; i++ {
				body(a.Row(i), a.Accumulate)
			}
			return nil
		},
	}
	return elem, fused
}

// TestPropertyFusedMatchesPerElement: across all schedulers, all sharing
// strategies, and 1/2/4/8 threads, the fused split-granular path produces
// results bit-identical to the per-element path — integer-valued data makes
// float addition exact, so the comparison is ==, not within-epsilon. The
// fused engine is warmed first so the measured pass runs on pooled state.
func TestPropertyFusedMatchesPerElement(t *testing.T) {
	policies := []sched.Policy{sched.Static, sched.Dynamic, sched.Guided, sched.WorkStealing}
	strategies := []robj.Strategy{
		robj.FullReplication, robj.FullLocking, robj.OptimizedFullLocking,
		robj.FixedLocking, robj.AtomicCAS,
	}
	threadChoices := []int{1, 2, 4, 8}
	prop := func(seed int64, pick uint8, threadsRaw uint8, rowsRaw uint16) bool {
		threads := threadChoices[int(threadsRaw)%len(threadChoices)]
		rows := 16 + int(rowsRaw)%400
		policy := policies[int(pick)%len(policies)]
		strategy := strategies[int(pick/8)%len(strategies)]
		const groups = 5
		m := dataset.NewMatrix(rows, 2)
		r := seed
		for i := range m.Data {
			r = r*6364136223846793005 + 1442695040888963407
			m.Data[i] = float64((r >> 33) % 100)
		}
		src := dataset.NewMemorySource(m)
		cfg := Config{Threads: threads, SplitRows: 1 + rows/7, Scheduler: policy, Strategy: strategy}
		elemSpec, fusedSpec := fusedHistSpecs(groups)

		flushesBefore := obs.Default.Value("freeride_block_flushes_total")
		rowsFusedBefore := obs.Default.Value("freeride_rows_fused_total")
		fusedEng := New(cfg)
		defer fusedEng.Close()
		for i := 0; i < 2; i++ {
			res, err := fusedEng.Run(fusedSpec, src)
			if err != nil {
				t.Log(err)
				return false
			}
			if err := fusedEng.Release(res); err != nil {
				t.Log(err)
				return false
			}
		}
		fusedRes, err := fusedEng.Run(fusedSpec, src)
		if err != nil {
			t.Log(err)
			return false
		}
		defer fusedEng.Release(fusedRes)

		elemEng := New(cfg)
		defer elemEng.Close()
		elemRes, err := elemEng.Run(elemSpec, src)
		if err != nil {
			t.Log(err)
			return false
		}
		defer elemEng.Release(elemRes)

		a, b := fusedRes.Object.Snapshot(), elemRes.Object.Snapshot()
		for i := range a {
			if a[i] != b[i] {
				t.Logf("cell %d: fused %v != per-element %v (policy %v, strategy %v, threads %d)",
					i, a[i], b[i], policy, strategy, threads)
				return false
			}
		}
		if obs.Default.Value("freeride_block_flushes_total") == flushesBefore {
			t.Log("fused runs did not move freeride_block_flushes_total")
			return false
		}
		if got := obs.Default.Value("freeride_rows_fused_total") - rowsFusedBefore; got != int64(3*rows) {
			t.Logf("freeride_rows_fused_total delta = %d, want %d", got, 3*rows)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFusedPrefersBlockOverElement: when a spec sets both callbacks, the
// engine runs only the block kernel.
func TestFusedPrefersBlockOverElement(t *testing.T) {
	// Integer-valued data keeps float addition exact, so the two paths'
	// different summation orders still compare with ==.
	m := dataset.NewMatrix(128, 2)
	r := int64(3)
	for i := range m.Data {
		r = r*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64((r >> 33) % 100)
	}
	elemSpec, fusedSpec := fusedHistSpecs(4)
	both := fusedSpec
	both.Reduction = func(a *ReductionArgs) error {
		t.Error("per-element Reduction called on a spec with BlockReduction")
		return nil
	}
	eng := New(Config{Threads: 2, SplitRows: 16})
	defer eng.Close()
	res, err := eng.Run(both, dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	ref := New(Config{Threads: 2, SplitRows: 16})
	defer ref.Close()
	want, err := ref.Run(elemSpec, dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Object.Snapshot(), want.Object.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestFusedEmptySourceIdentity: a fused run over zero rows never calls the
// block kernel and yields the operator's identity in every cell.
func TestFusedEmptySourceIdentity(t *testing.T) {
	empty := dataset.NewMemorySource(dataset.NewMatrix(0, 2))
	for _, op := range []robj.Op{robj.OpAdd, robj.OpMin, robj.OpMax} {
		eng := New(Config{Threads: 2, SplitRows: 16})
		spec := Spec{
			Object: ObjectSpec{Groups: 2, Elems: 2, Op: op},
			BlockReduction: func(a *BlockArgs) error {
				t.Error("block kernel called on empty source")
				return nil
			},
		}
		res, err := eng.Run(spec, empty)
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		want := op.Identity()
		for g := 0; g < 2; g++ {
			for e := 0; e < 2; e++ {
				if got := res.Object.Get(g, e); got != want {
					t.Fatalf("op %v cell (%d,%d) = %v, want identity %v", op, g, e, got, want)
				}
			}
		}
		eng.Close()
	}
}

// TestFusedCancellation: cancelling a fused run mid-pass returns ctx.Err()
// promptly with no partial result, same as the per-element path.
func TestFusedCancellation(t *testing.T) {
	_, fusedSpec := fusedHistSpecs(4)
	eng := New(Config{Threads: 2, SplitRows: 10})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	res, err := eng.RunContext(ctx, fusedSpec, &blockedSource{rows: 1000, cols: 2})
	if res != nil {
		t.Fatal("cancelled fused run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Fatalf("cancelled fused run took %v, want well under a second", elapsed)
	}
}

// TestFusedSpecValidation: the fused path requires a cell-based object and
// rejects user-managed local state.
func TestFusedSpecValidation(t *testing.T) {
	src := dataset.NewMemorySource(dataset.UniformMatrix(8, 2, 1, 0, 1))
	eng := New(Config{Threads: 1})
	defer eng.Close()

	if _, err := eng.Run(Spec{}, src); !errors.Is(err, ErrNoReduction) {
		t.Fatalf("empty spec: want ErrNoReduction, got %v", err)
	}
	noObj := Spec{BlockReduction: func(*BlockArgs) error { return nil }}
	if _, err := eng.Run(noObj, src); err == nil || !strings.Contains(err.Error(), "cell-based reduction object") {
		t.Fatalf("BlockReduction without object shape: got %v", err)
	}
	withLocal := Spec{
		Object:         ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		BlockReduction: func(*BlockArgs) error { return nil },
		LocalInit:      func() any { return nil },
		LocalCombine:   func(dst, src any) any { return dst },
	}
	if _, err := eng.Run(withLocal, src); err == nil || !strings.Contains(err.Error(), "LocalInit") {
		t.Fatalf("BlockReduction with LocalInit: got %v", err)
	}
}

// TestBlockArgsAccessors covers the BlockArgs surface a kernel relies on:
// shape accessors, local accumulation under every operator, Row, Scratch
// reuse, and the out-of-range panic.
func TestBlockArgsAccessors(t *testing.T) {
	for _, op := range []robj.Op{robj.OpAdd, robj.OpMin, robj.OpMax} {
		a := &BlockArgs{op: op, groups: 2, elems: 3, worker: 1}
		a.acc = make([]float64, 6)
		fillIdentity(a.acc, op.Identity())
		if a.Groups() != 2 || a.Elems() != 3 || a.Worker() != 1 {
			t.Fatal("BlockArgs accessors")
		}
		a.Accumulate(1, 2, 7)
		a.Accumulate(1, 2, 4)
		want := op.Apply(op.Apply(op.Identity(), 7), 4)
		if got := a.Acc()[1*3+2]; got != want {
			t.Fatalf("op %v: acc = %v, want %v", op, got, want)
		}
	}
	a := &BlockArgs{Data: []float64{1, 2, 3, 4}, NumRows: 2, Cols: 2}
	if r := a.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatal("BlockArgs.Row")
	}
	s := a.Scratch(0, 4)
	if len(s) != 4 {
		t.Fatal("Scratch length")
	}
	if s2 := a.Scratch(0, 2); len(s2) != 2 || &s2[0] != &s[0] {
		t.Fatal("Scratch must reuse its buffer")
	}
	a.groups, a.elems = 1, 1
	a.acc = []float64{0}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Accumulate did not panic")
		}
	}()
	a.Accumulate(1, 0, math.Pi)
}
