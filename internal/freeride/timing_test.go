package freeride

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// TestCombineTimeExcludesLocalCombine pins the combine-timing fix: with a
// deliberately slow LocalCombine and a fast user Combine, Stats.CombineTime
// must track the PhaseCombine span alone and not absorb the local-combine
// work already reported under PhaseLocalCombine — the regression was
// CombineTime (and the freeride_combine histogram) double-counting the
// local-combine phase because it was measured from the local-combine start.
func TestCombineTimeExcludesLocalCombine(t *testing.T) {
	const localDelay = 60 * time.Millisecond
	eng := New(Config{Threads: 2, SplitRows: 8})
	defer eng.Close()
	src := dataset.NewMemorySource(rowMatrix(64, 2))

	spec := Spec{
		Object: ObjectSpec{Groups: 1, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				a.Accumulate(0, 0, a.Row(i)[0])
			}
			return nil
		},
		LocalInit: func() any { return 0 },
		LocalCombine: func(dst, src any) any {
			time.Sleep(localDelay) // make the local-combine phase unmistakable
			return dst.(int) + src.(int)
		},
		Combine: func(o *robj.Object) error { return nil },
	}

	hist := obs.Default.FindHistogram("freeride_combine_duration_seconds")
	if hist == nil {
		t.Fatal("freeride_combine_duration_seconds not registered")
	}
	before := hist.State()

	res, err := eng.RunContext(context.Background(), spec, src)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Release(res)

	if res.Stats.LocalCombineTime < localDelay {
		t.Fatalf("LocalCombineTime = %v, want >= %v (slow LocalCombine ran there)",
			res.Stats.LocalCombineTime, localDelay)
	}
	if res.Stats.CombineTime >= localDelay {
		t.Fatalf("CombineTime = %v still absorbs the %v local-combine phase", res.Stats.CombineTime, localDelay)
	}

	// CombineTime must agree with the PhaseCombine span, not the
	// local-combine + combine window.
	var combineSpan time.Duration
	found := false
	for _, sp := range res.Stats.Spans {
		if sp.Name == PhaseCombine {
			combineSpan, found = sp.Dur, true
		}
	}
	if !found {
		t.Fatal("no PhaseCombine span recorded")
	}
	if diff := res.Stats.CombineTime - combineSpan; diff < -localDelay/2 || diff > localDelay/2 {
		t.Fatalf("CombineTime %v diverges from PhaseCombine span %v", res.Stats.CombineTime, combineSpan)
	}

	// The histogram observation carries the same fix: the pass recorded one
	// combine observation well below the local-combine delay.
	d := hist.State().Sub(before)
	if d.Count != 1 {
		t.Fatalf("combine histogram recorded %d observations, want 1", d.Count)
	}
	if d.Sum >= localDelay.Seconds() {
		t.Fatalf("combine histogram sum %.3fs includes the %v local-combine phase", d.Sum, localDelay)
	}

	// Total still accounts for every phase, including the split-out one.
	want := res.Stats.SplitTime + res.Stats.ReduceTime + res.Stats.LocalCombineTime +
		res.Stats.CombineTime + res.Stats.FinalizeTime
	if res.Stats.Total() != want {
		t.Fatalf("Stats.Total() = %v, want %v", res.Stats.Total(), want)
	}
}

// TestCombineHistogramOnlyWhenCombineRuns: specs without a user Combine no
// longer observe anything into the combine histogram (previously every pass
// recorded its local-combine wall time there).
func TestCombineHistogramOnlyWhenCombineRuns(t *testing.T) {
	eng := New(Config{Threads: 2, SplitRows: 8})
	defer eng.Close()
	src := dataset.NewMemorySource(rowMatrix(32, 2))
	hist := obs.Default.FindHistogram("freeride_combine_duration_seconds")
	before := hist.State()
	res, err := eng.RunContext(context.Background(), Spec{
		Object: ObjectSpec{Groups: 1, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				a.Accumulate(0, 0, 1)
			}
			return nil
		},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Release(res)
	if res.Stats.CombineTime != 0 {
		t.Fatalf("CombineTime = %v without a user Combine, want 0", res.Stats.CombineTime)
	}
	if d := hist.State().Sub(before); d.Count != 0 {
		t.Fatalf("combine histogram recorded %d observations for a pass with no Combine", d.Count)
	}
}

// TestCancelDuringFullTicketChannelRunsNoOrphanSlots: when a job is
// cancelled while its tickets are still queued behind another job's, the
// queued slots must observe the stop flag at slot start and retire without
// running any user code (LocalInit, Reduction) or touching the scheduler.
func TestCancelDuringFullTicketChannelRunsNoOrphanSlots(t *testing.T) {
	const threads = 4
	eng := New(Config{Threads: threads, SplitRows: 4})
	defer eng.Close()
	src := dataset.NewMemorySource(rowMatrix(64, 2))

	// Job A wedges every pool worker until released, so job B's tickets sit
	// in the (full enough) channel while B is cancelled.
	release := make(chan struct{})
	var wedged atomic.Int32
	jobA := Spec{
		Object: ObjectSpec{Groups: 1, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			if wedged.Add(1) <= threads {
				<-release
			}
			return nil
		},
	}
	aDone := make(chan error, 1)
	go func() {
		res, err := eng.RunContext(context.Background(), jobA, src)
		if err == nil {
			err = eng.Release(res)
		}
		aDone <- err
	}()
	// Wait until every worker is wedged inside job A.
	for deadline := time.Now().Add(5 * time.Second); wedged.Load() < threads; {
		if time.Now().After(deadline) {
			t.Fatal("workers never wedged on job A")
		}
		time.Sleep(time.Millisecond)
	}

	var localInits, reductions atomic.Int32
	jobB := Spec{
		Object: ObjectSpec{Groups: 1, Elems: 2, Op: robj.OpAdd},
		LocalInit: func() any {
			localInits.Add(1)
			return 0
		},
		LocalCombine: func(dst, src any) any { return dst },
		Reduction: func(a *ReductionArgs) error {
			reductions.Add(1)
			return nil
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan error, 1)
	go func() {
		_, err := eng.RunContext(ctx, jobB, src)
		bDone <- err
	}()
	// Give B's submitter time to enqueue its tickets behind A's, then cancel
	// while every one of them is still queued.
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-bDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("job B returned %v, want context.Canceled", err)
	}

	// Release job A; its workers drain B's orphan tickets on the way out.
	close(release)
	if err := <-aDone; err != nil {
		t.Fatalf("job A: %v", err)
	}
	// Orphan slots must not have run any of B's user code.
	if n := localInits.Load(); n != 0 {
		t.Fatalf("cancelled job's LocalInit ran %d times on orphan slots", n)
	}
	if n := reductions.Load(); n != 0 {
		t.Fatalf("cancelled job's Reduction ran %d times on orphan slots", n)
	}
}

// TestSubmitHandle: Submit runs the pass asynchronously under a pre-minted
// job id, TryResult is non-blocking, and Wait returns the same outcome to
// every caller.
func TestSubmitHandle(t *testing.T) {
	eng := New(Config{Threads: 2, SplitRows: 8})
	defer eng.Close()
	src := dataset.NewMemorySource(rowMatrix(64, 2))
	gate := make(chan struct{})
	h := eng.Submit(context.Background(), Spec{
		Object: ObjectSpec{Groups: 1, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			<-gate
			for i := 0; i < a.NumRows; i++ {
				a.Accumulate(0, 0, 1)
			}
			return nil
		},
	}, src)
	if h.Job() == 0 {
		t.Fatal("Submit handle has no job id")
	}
	if _, _, ok := h.TryResult(); ok {
		t.Fatal("TryResult reported completion while the pass is gated")
	}
	close(gate)
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Release(res)
	if got := res.Object.Get(0, 0); got != 64 {
		t.Fatalf("async pass summed %v rows, want 64", got)
	}
	if res.Stats.Job != h.Job() {
		t.Fatalf("result ran under job %d, handle promised %d", res.Stats.Job, h.Job())
	}
	if res2, err2, ok := h.TryResult(); !ok || res2 != res || err2 != nil {
		t.Fatal("TryResult disagrees with Wait after completion")
	}
}

// TestSubmitHandleCancel: a cancelled async pass surfaces ctx.Err() through
// the handle.
func TestSubmitHandleCancel(t *testing.T) {
	eng := New(Config{Threads: 2, SplitRows: 8})
	defer eng.Close()
	src := dataset.NewMemorySource(rowMatrix(64, 2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := eng.Submit(ctx, Spec{
		Object: ObjectSpec{Groups: 1, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			return nil
		},
	}, src)
	if _, err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
}

// rowMatrix builds an n×cols matrix with every cell set to 1.
func rowMatrix(n, cols int) *dataset.Matrix {
	m := dataset.NewMatrix(n, cols)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}
