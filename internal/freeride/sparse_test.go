package freeride

import (
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// sparseScatterSpec is a fused push reduction over a large object that each
// row touches exactly once — the access pattern of a sparse executor: cell
// row[0] accumulates row[1]. With groups ≫ split rows the dense worker-local
// mirror wastes an O(groups) sweep per split; the hashed accumulator is the
// intended mode.
func sparseScatterSpec(groups int) Spec {
	return Spec{
		Object:       ObjectSpec{Groups: groups, Elems: 1, Op: robj.OpAdd},
		ScatterBlock: true,
		BlockReduction: func(a *BlockArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				a.Accumulate(int(row[0]), 0, row[1])
			}
			return nil
		},
	}
}

func scatterMatrix(rows, groups int, seed int64) *dataset.Matrix {
	m := dataset.NewMatrix(rows, 2)
	r := seed
	for i := 0; i < rows; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		m.Data[2*i] = float64(uint64(r) >> 33 % uint64(groups))
		m.Data[2*i+1] = float64(int64(uint64(r)>>21%50) - 20)
	}
	return m
}

// TestSparseAccDecision pins the engine's dense-vs-hashed choice: the hashed
// accumulator engages only on fused jobs whose object crossed
// Config.SparseAccCells, 0 resolves to the 4096-cell default, and a negative
// threshold disables the mode no matter the object size.
func TestSparseAccDecision(t *testing.T) {
	obj, err := robj.Alloc(robj.FullReplication, robj.OpAdd, 5000, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := robj.Alloc(robj.FullReplication, robj.OpAdd, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fused := Spec{ScatterBlock: true, BlockReduction: func(*BlockArgs) error { return nil }}
	dense := Spec{BlockReduction: func(*BlockArgs) error { return nil }}
	elem := Spec{Reduction: func(*ReductionArgs) error { return nil }}
	cases := []struct {
		name string
		cfg  Config
		spec Spec
		obj  *robj.Object
		want bool
	}{
		{"default threshold, large object", Config{}.withDefaults(), fused, obj, true},
		{"default threshold, small object", Config{}.withDefaults(), fused, small, false},
		{"explicit low threshold", Config{SparseAccCells: 4}.withDefaults(), fused, small, true},
		{"disabled", Config{SparseAccCells: -1}.withDefaults(), fused, obj, false},
		{"per-element spec never", Config{SparseAccCells: 1}.withDefaults(), elem, obj, false},
		{"dense fused kernel never (no ScatterBlock)", Config{SparseAccCells: 1}.withDefaults(), dense, obj, false},
		{"no object never", Config{SparseAccCells: 1}.withDefaults(), fused, nil, false},
	}
	for _, tc := range cases {
		if got := sparseAccFor(tc.cfg, tc.spec, tc.obj); got != tc.want {
			t.Errorf("%s: sparseAccFor = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPropertySparseAccMatchesDense: for every sharing strategy, the same
// fused spec run with the hashed accumulator (SparseAccCells forces it on),
// the dense mirror (forced off), and the per-element path all produce
// bit-identical objects — integer-valued data makes float addition exact.
func TestPropertySparseAccMatchesDense(t *testing.T) {
	const groups, rows = 3000, 2000
	m := scatterMatrix(rows, groups, 11)
	src := dataset.NewMemorySource(m)
	spec := sparseScatterSpec(groups)
	elemSpec := Spec{
		Object: spec.Object,
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				a.Accumulate(int(row[0]), 0, row[1])
			}
			return nil
		},
	}
	for _, strategy := range robj.Strategies() {
		base := Config{Threads: 4, SplitRows: 64, Scheduler: sched.Dynamic, Strategy: strategy}
		run := func(cfg Config, s Spec) []float64 {
			t.Helper()
			eng := New(cfg)
			defer eng.Close()
			res, err := eng.Run(s, src)
			if err != nil {
				t.Fatalf("%v: %v", strategy, err)
			}
			return res.Object.Snapshot()
		}
		hashedCfg := base
		hashedCfg.SparseAccCells = 1
		denseCfg := base
		denseCfg.SparseAccCells = -1

		flushesBefore := obs.Default.Value("freeride_scatter_flushes_total")
		hashed := run(hashedCfg, spec)
		if obs.Default.Value("freeride_scatter_flushes_total") == flushesBefore {
			t.Fatalf("%v: hashed run did not move freeride_scatter_flushes_total", strategy)
		}
		dense := run(denseCfg, spec)
		ref := run(denseCfg, elemSpec)
		for i := range ref {
			if hashed[i] != ref[i] || dense[i] != ref[i] {
				t.Fatalf("%v cell %d: hashed %v dense %v per-element %v",
					strategy, i, hashed[i], dense[i], ref[i])
			}
		}
	}
}

// TestSparseAccRepeatedTouches exercises aliased scatter targets (many rows
// landing in few cells) through the hashed mode, where first-touch insert
// and fold-on-rehit take different code paths, plus growth past the hash's
// initial capacity within one split.
func TestSparseAccRepeatedTouches(t *testing.T) {
	const groups = 5000
	rows := 600 // one split; > cellHashMinCap distinct cells force growth
	m := dataset.NewMatrix(rows, 2)
	for i := 0; i < rows; i++ {
		// Half the rows hammer cell 7; the rest spread out.
		if i%2 == 0 {
			m.Data[2*i] = 7
		} else {
			m.Data[2*i] = float64((i * 13) % groups)
		}
		m.Data[2*i+1] = float64(i%9 + 1)
	}
	src := dataset.NewMemorySource(m)
	spec := sparseScatterSpec(groups)

	want := make([]float64, groups)
	for i := 0; i < rows; i++ {
		want[int(m.Data[2*i])] += m.Data[2*i+1]
	}
	eng := New(Config{Threads: 1, SplitRows: rows, SparseAccCells: 1})
	defer eng.Close()
	res, err := eng.Run(spec, src)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Object.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCellHash unit-tests the open-addressed accumulator directly:
// first-touch order, fold on rehit, growth, and reuse after reset.
func TestCellHash(t *testing.T) {
	h := newCellHash()
	h.add(9, 2, robj.OpAdd)
	h.add(3, 5, robj.OpAdd)
	h.add(9, 4, robj.OpAdd) // rehit folds
	if len(h.cells) != 2 || h.cells[0] != 9 || h.cells[1] != 3 {
		t.Fatalf("cells = %v, want first-touch order [9 3]", h.cells)
	}
	if h.vals[0] != 6 || h.vals[1] != 5 {
		t.Fatalf("vals = %v, want [6 5]", h.vals)
	}

	h.reset()
	if len(h.cells) != 0 {
		t.Fatal("reset kept cells")
	}
	// Growth: insert far past the initial capacity, with stride-1 keys to
	// stress probe runs, then verify every accumulated value.
	const n = 10 * cellHashMinCap
	for i := 0; i < n; i++ {
		h.add(int32(i), float64(i), robj.OpAdd)
		h.add(int32(i), 1, robj.OpAdd)
	}
	if len(h.cells) != n {
		t.Fatalf("after growth: %d cells, want %d", len(h.cells), n)
	}
	seen := map[int32]float64{}
	for k, c := range h.cells {
		seen[c] = h.vals[k]
	}
	for i := 0; i < n; i++ {
		if seen[int32(i)] != float64(i)+1 {
			t.Fatalf("cell %d = %v, want %v", i, seen[int32(i)], float64(i)+1)
		}
	}

	// Min/max operators fold correctly on rehit too.
	h.reset()
	h.add(2, 8, robj.OpMin)
	h.add(2, 3, robj.OpMin)
	if h.vals[0] != 3 {
		t.Fatalf("OpMin fold = %v, want 3", h.vals[0])
	}
}
