package freeride

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// blockedSource blocks every read until the caller's context is cancelled —
// the worst case for cancellation latency: a device that never returns.
type blockedSource struct{ rows, cols int }

func (s *blockedSource) NumRows() int { return s.rows }
func (s *blockedSource) Cols() int    { return s.cols }
func (s *blockedSource) ReadRows(begin, end int, dst []float64) error {
	time.Sleep(10 * time.Second)
	return errors.New("blockedSource: read without context")
}
func (s *blockedSource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestRunContextCancelBlockedSource: cancelling a run whose workers are all
// blocked inside source reads returns ctx.Err() well under a second.
func TestRunContextCancelBlockedSource(t *testing.T) {
	cancelledBefore := obs.Default.Value("freeride_runs_cancelled_total")
	eng := New(Config{Threads: 2, SplitRows: 10})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	res, err := eng.RunContext(ctx, sumSpec(), &blockedSource{rows: 1000, cols: 2})
	elapsed := time.Since(t0)
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("cancelled run took %v, want well under a second", elapsed)
	}
	if d := obs.Default.Value("freeride_runs_cancelled_total") - cancelledBefore; d != 1 {
		t.Fatalf("freeride_runs_cancelled_total delta = %d, want 1", d)
	}
}

// TestRunContextDeadline: a deadline on a slow (but responsive) source
// surfaces as DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	m := dataset.UniformMatrix(10_000, 2, 1, 0, 1)
	slow := dataset.NewFaultSource(dataset.NewMemorySource(m),
		dataset.FaultConfig{Latency: 5 * time.Millisecond})
	eng := New(Config{Threads: 2, SplitRows: 50})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := eng.RunContext(ctx, sumSpec(), slow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Fatalf("timed-out run took %v", elapsed)
	}
}

// TestRunContextPreCancelled: an already-cancelled context fails the run
// before any split is processed.
func TestRunContextPreCancelled(t *testing.T) {
	m := dataset.UniformMatrix(1000, 2, 1, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(Config{Threads: 2}).RunContext(ctx, sumSpec(), dataset.NewMemorySource(m))
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("res=%v err=%v, want nil/Canceled", res, err)
	}
}

// TestReductionErrorStopsScheduler: after the first worker error the others
// stop draining the scheduler, observable as a sched_chunks_total delta far
// below the split count.
func TestReductionErrorStopsScheduler(t *testing.T) {
	const rows, splitRows = 10_000, 10 // 1000 splits
	m := dataset.UniformMatrix(rows, 1, 1, 0, 1)
	boom := errors.New("boom")
	var calls atomic.Int64
	spec := Spec{
		Object: ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			calls.Add(1)
			if a.Begin == 0 {
				return boom
			}
			time.Sleep(200 * time.Microsecond) // give the stop flag time to matter
			return nil
		},
	}
	label := obs.Label{Key: "policy", Value: "dynamic"}
	before := obs.Default.Value("sched_chunks_total", label)
	failedBefore := obs.Default.Value("freeride_runs_failed_total")
	_, err := New(Config{Threads: 4, SplitRows: splitRows}).Run(spec, dataset.NewMemorySource(m))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	delta := obs.Default.Value("sched_chunks_total", label) - before
	if delta > 200 {
		t.Fatalf("scheduler handed out %d of 1000 chunks after the error; workers kept draining", delta)
	}
	if d := obs.Default.Value("freeride_runs_failed_total") - failedBefore; d != 1 {
		t.Fatalf("freeride_runs_failed_total delta = %d, want 1", d)
	}
}

// TestFailedRunFlushesTrace: error-path returns still flush the partial
// trace into the process event log instead of leaking the run's spans.
func TestFailedRunFlushesTrace(t *testing.T) {
	m := dataset.UniformMatrix(100, 1, 1, 0, 1)
	spec := sumSpec()
	spec.Reduction = func(*ReductionArgs) error { return errors.New("fail") }
	before := obs.Log.Len()
	if _, err := New(Config{Threads: 2}).Run(spec, dataset.NewMemorySource(m)); err == nil {
		t.Fatal("expected error")
	}
	after := obs.Log.Len()
	// The log is a bounded ring; at capacity Len stays flat even on Add.
	if after == before && after < 512 {
		t.Fatalf("failed run not flushed to event log (len %d -> %d)", before, after)
	}

	// Same for a splitter-validation failure.
	spec = sumSpec()
	spec.Splitter = func(totalRows, units int) []sched.Chunk {
		return []sched.Chunk{{Begin: 5, End: totalRows}} // does not tile [0, totalRows)
	}
	before = obs.Log.Len()
	if _, err := New(Config{Threads: 2}).Run(spec, dataset.NewMemorySource(m)); err == nil {
		t.Fatal("expected splitter validation error")
	}
	if after := obs.Log.Len(); after == before && after < 512 {
		t.Fatal("splitter-validation failure not flushed to event log")
	}
}

// TestCombineValidationAndFinalizeFlush: Combine and Finalize error paths
// flush the trace and count as failed runs.
func TestCombineValidationAndFinalizeFlush(t *testing.T) {
	m := dataset.UniformMatrix(100, 1, 1, 0, 1)
	for name, mut := range map[string]func(*Spec){
		"combine":  func(s *Spec) { s.Combine = func(*robj.Object) error { return errors.New("combine fail") } },
		"finalize": func(s *Spec) { s.Finalize = func(*Result) error { return errors.New("finalize fail") } },
	} {
		spec := sumSpec()
		mut(&spec)
		failedBefore := obs.Default.Value("freeride_runs_failed_total")
		logBefore := obs.Log.Len()
		if _, err := New(Config{Threads: 2}).Run(spec, dataset.NewMemorySource(m)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
		if d := obs.Default.Value("freeride_runs_failed_total") - failedBefore; d != 1 {
			t.Fatalf("%s: failed counter delta = %d, want 1", name, d)
		}
		if after := obs.Log.Len(); after == logBefore && after < 512 {
			t.Fatalf("%s: trace not flushed", name)
		}
	}
}

// TestCombineRequiresCellObject: a Combine hook on a LocalInit-only spec is
// rejected at validation time instead of handing user code a nil object.
func TestCombineRequiresCellObject(t *testing.T) {
	m := dataset.UniformMatrix(100, 1, 1, 0, 1)
	spec := Spec{
		Reduction:    func(a *ReductionArgs) error { return nil },
		LocalInit:    func() any { return 0 },
		LocalCombine: func(dst, src any) any { return dst },
		Combine:      func(o *robj.Object) error { _ = o.Get(0, 0); return nil }, // would panic on nil o
	}
	_, err := New(Config{Threads: 2}).Run(spec, dataset.NewMemorySource(m))
	if err == nil || !strings.Contains(err.Error(), "Combine requires a cell-based reduction object") {
		t.Fatalf("err = %v, want descriptive validation error", err)
	}
}

// TestGlobalCombineLocalOnlyResults: GlobalCombine no longer panics on
// LocalInit-only results, and GlobalCombineLocal merges them.
func TestGlobalCombineLocalOnlyResults(t *testing.T) {
	m := dataset.UniformMatrix(1000, 1, 3, 0, 1)
	spec := Spec{
		Reduction: func(a *ReductionArgs) error {
			sum := a.Local.(float64)
			for _, v := range a.Data {
				sum += v
			}
			a.Local = sum
			return nil
		},
		LocalInit:    func() any { return 0.0 },
		LocalCombine: func(dst, src any) any { return dst.(float64) + src.(float64) },
	}
	eng := New(Config{Threads: 2})
	src := dataset.NewMemorySource(m)
	r1, err := eng.Run(spec, src)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(spec, src)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := GlobalCombine([]*Result{r1, r2}); err == nil {
		t.Fatal("GlobalCombine of LocalInit-only results should error, not panic")
	} else if !strings.Contains(err.Error(), "GlobalCombineLocal") {
		t.Fatalf("error should point at GlobalCombineLocal: %v", err)
	}

	want := r1.Local.(float64) + r2.Local.(float64)
	merged, err := GlobalCombineLocal([]*Result{r1, r2}, spec.LocalCombine)
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.Local.(float64); got != want {
		t.Fatalf("merged local = %v, want %v", got, want)
	}

	if _, err := GlobalCombineLocal([]*Result{r1, r2}, nil); err == nil {
		t.Fatal("GlobalCombineLocal without a combine function should error")
	}
	if _, err := GlobalCombineLocal(nil, spec.LocalCombine); err == nil {
		t.Fatal("GlobalCombineLocal of no results should error")
	}
}

// TestRunIntoMismatchErrors: every RunInto precondition failure is a
// descriptive error, not a corrupted pass.
func TestRunIntoMismatchErrors(t *testing.T) {
	m := dataset.UniformMatrix(500, 1, 1, 0, 1)
	src := dataset.NewMemorySource(m)
	eng := New(Config{Threads: 2})
	res, err := eng.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := eng.RunInto(sumSpec(), src, nil); err == nil {
		t.Fatal("nil reuse object accepted")
	}
	shape := sumSpec()
	shape.Object.Elems = 7
	if _, err := eng.RunInto(shape, src, res.Object); err == nil ||
		!strings.Contains(err.Error(), "does not match spec") {
		t.Fatalf("shape mismatch err = %v", err)
	}
	other := New(Config{Threads: 3})
	if _, err := other.RunInto(sumSpec(), src, res.Object); err == nil ||
		!strings.Contains(err.Error(), "workers") {
		t.Fatalf("worker-count mismatch err = %v", err)
	}
}

// TestRunRecoversThroughRetrySource: seeded transient faults behind the
// retry layer do not change the reduction result, while the same faults
// without retry fail the run and permanent faults surface through it.
func TestRunRecoversThroughRetrySource(t *testing.T) {
	m := dataset.UniformMatrix(20_000, 2, 5, 0, 1)
	eng := New(Config{Threads: 4, SplitRows: 128})
	clean, err := eng.Run(sumSpec(), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}

	faultCfg := dataset.FaultConfig{Rate: 0.3, Seed: 11, FailCount: 2}
	faulty := dataset.NewFaultSource(dataset.NewMemorySource(m), faultCfg)
	if _, err := eng.Run(sumSpec(), faulty); err == nil {
		t.Fatal("fault injection without retry should fail the run")
	} else if !errors.Is(err, dataset.ErrInjectedFault) {
		t.Fatalf("err = %v, want injected fault", err)
	}

	retriesBefore := obs.Default.Value("dataset_read_retries_total")
	recovered, err := eng.Run(sumSpec(),
		dataset.NewRetrySource(dataset.NewFaultSource(dataset.NewMemorySource(m), faultCfg), 4, time.Millisecond))
	if err != nil {
		t.Fatalf("retry layer should recover the run: %v", err)
	}
	if got, want := recovered.Object.Get(0, 0), clean.Object.Get(0, 0); got != want {
		t.Fatalf("recovered sum %v != clean sum %v", got, want)
	}
	if d := obs.Default.Value("dataset_read_retries_total") - retriesBefore; d == 0 {
		t.Fatal("expected retries to be recorded")
	}

	perm := dataset.NewRetrySource(
		dataset.NewFaultSource(dataset.NewMemorySource(m),
			dataset.FaultConfig{Rate: 0.3, PermanentRate: 1, Seed: 11}),
		4, time.Millisecond)
	if _, err := eng.Run(sumSpec(), perm); err == nil {
		t.Fatal("permanent faults should fail the run through the retry layer")
	} else if !dataset.IsPermanent(err) {
		t.Fatalf("err = %v, want permanent fault", err)
	}
}

// TestRunContextThroughPrefetch: cancellation propagates through the
// prefetch layer's fetches.
func TestRunContextThroughPrefetch(t *testing.T) {
	m := dataset.UniformMatrix(50_000, 2, 9, 0, 1)
	slow := dataset.NewFaultSource(dataset.NewMemorySource(m),
		dataset.FaultConfig{Latency: 5 * time.Millisecond})
	pf := dataset.NewPrefetchSource(slow, 256, 4)
	eng := New(Config{Threads: 2, SplitRows: 256})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := eng.RunContext(ctx, sumSpec(), pf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Fatalf("cancel through prefetch took %v", elapsed)
	}
}
