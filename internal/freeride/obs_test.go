package freeride

import (
	"testing"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// colSumSpec builds a trivial per-column-sum spec over a cols-wide dataset.
func colSumSpec(cols int) Spec {
	return Spec{
		Object: ObjectSpec{Groups: 1, Elems: cols, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				for j, v := range row {
					a.Accumulate(0, j, v)
				}
			}
			return nil
		},
	}
}

func TestRunRecordsObservability(t *testing.T) {
	const rows, cols, threads = 10000, 4, 3
	m := dataset.UniformMatrix(rows, cols, 7, 0, 1)
	eng := New(Config{Threads: threads, SplitRows: 512})

	runsBefore := obs.Default.Value("freeride_runs_total")
	reduceNSBefore := obs.Default.Value("freeride_phase_ns_total", obs.Label{Key: "phase", Value: PhaseReduce})
	logBefore := obs.Log.Len()

	res, err := eng.Run(colSumSpec(cols), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}

	// Coarse Stats still work and the new per-worker views are consistent
	// with them.
	var splits, rowsSeen int64
	if len(res.Stats.WorkerSplits) != threads || len(res.Stats.WorkerRows) != threads ||
		len(res.Stats.WorkerBusy) != threads {
		t.Fatalf("per-worker stats not sized to %d workers: %+v", threads, res.Stats)
	}
	for w := 0; w < threads; w++ {
		splits += res.Stats.WorkerSplits[w]
		rowsSeen += res.Stats.WorkerRows[w]
		if res.Stats.WorkerBusy[w] < 0 || res.Stats.WorkerIdle(w) < 0 {
			t.Fatalf("worker %d: negative busy/idle", w)
		}
		if res.Stats.WorkerBusy[w] > res.Stats.ReduceTime {
			t.Fatalf("worker %d: busy %v exceeds phase wall %v", w, res.Stats.WorkerBusy[w], res.Stats.ReduceTime)
		}
	}
	if splits != int64(res.Stats.Splits) {
		t.Fatalf("worker splits sum %d != Stats.Splits %d", splits, res.Stats.Splits)
	}
	if rowsSeen != rows {
		t.Fatalf("worker rows sum %d != %d", rowsSeen, rows)
	}

	// The phase trace is embedded in Stats and nests correctly.
	if len(res.Stats.Spans) == 0 {
		t.Fatal("Stats.Spans empty")
	}
	byName := map[string][]obs.SpanRecord{}
	var runID int64
	for _, r := range res.Stats.Spans {
		byName[r.Name] = append(byName[r.Name], r)
		if r.Name == "run" {
			runID = r.ID
		}
	}
	for _, phase := range []string{PhaseSplit, PhaseReduce, PhaseLocalCombine} {
		recs := byName[phase]
		if len(recs) != 1 {
			t.Fatalf("phase %q: %d spans, want 1", phase, len(recs))
		}
		if recs[0].Parent != runID {
			t.Fatalf("phase %q not nested under run", phase)
		}
	}
	workersSeen := map[int]bool{}
	for _, r := range byName["worker"] {
		if r.Parent != byName[PhaseReduce][0].ID {
			t.Fatal("worker span not nested under reduce")
		}
		workersSeen[r.Worker] = true
	}
	if len(workersSeen) != threads {
		t.Fatalf("worker spans for %d workers, want %d", len(workersSeen), threads)
	}

	// Global counters and the event log advanced.
	if got := obs.Default.Value("freeride_runs_total"); got != runsBefore+1 {
		t.Fatalf("runs counter %d, want %d", got, runsBefore+1)
	}
	reduceDelta := obs.Default.Value("freeride_phase_ns_total", obs.Label{Key: "phase", Value: PhaseReduce}) - reduceNSBefore
	if reduceDelta < int64(res.Stats.ReduceTime) {
		t.Fatalf("reduce phase counter advanced %d ns, want >= %d", reduceDelta, int64(res.Stats.ReduceTime))
	}
	if obs.Log.Len() != logBefore+1 && obs.Log.Len() != 512 {
		t.Fatalf("event log did not record the run")
	}
}

func TestPhasesListsCombineAndFinalize(t *testing.T) {
	m := dataset.UniformMatrix(100, 2, 1, 0, 1)
	eng := New(Config{Threads: 2})
	spec := colSumSpec(2)
	spec.Combine = func(o *robj.Object) error { time.Sleep(time.Millisecond); return nil }
	spec.Finalize = func(r *Result) error { return nil }
	combineBefore := obs.Default.Value("freeride_phase_ns_total", obs.Label{Key: "phase", Value: PhaseCombine})
	res, err := eng.Run(spec, dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range res.Stats.Spans {
		names[r.Name] = true
	}
	for _, want := range []string{PhaseCombine, PhaseFinalize} {
		if !names[want] {
			t.Fatalf("missing %q span in %v", want, names)
		}
	}
	delta := obs.Default.Value("freeride_phase_ns_total", obs.Label{Key: "phase", Value: PhaseCombine}) - combineBefore
	if delta < int64(time.Millisecond) {
		t.Fatalf("combine phase counter delta %dns, want >= 1ms", delta)
	}
}
