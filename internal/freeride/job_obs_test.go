package freeride

import (
	"context"
	"sync"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// TestJobScopedDeltasConcurrent is the acceptance check for job-scoped
// observability: several jobs with different row counts run concurrently on
// one session's shared pool, and each Result's JobDeltas must report exactly
// that job's rows — the per-job view never blurs across concurrent jobs the
// way a registry-wide diff would.
func TestJobScopedDeltasConcurrent(t *testing.T) {
	e := New(Config{Threads: 4, SplitRows: 16, Scheduler: sched.Dynamic})
	defer e.Close()

	rowCounts := []int{100, 500, 900, 1300}
	results := make([]*Result, len(rowCounts))
	errs := make([]error, len(rowCounts))
	var wg sync.WaitGroup
	for i, rows := range rowCounts {
		wg.Add(1)
		go func(i, rows int) {
			defer wg.Done()
			src := dataset.NewMemorySource(dataset.UniformMatrix(rows, 2, int64(i+1), 0, 1))
			results[i], errs[i] = e.Run(sumSpec(), src)
		}(i, rows)
	}
	wg.Wait()

	seenJobs := map[obs.JobID]bool{}
	for i, rows := range rowCounts {
		if errs[i] != nil {
			t.Fatalf("job %d failed: %v", i, errs[i])
		}
		st := results[i].Stats
		if st.Job == 0 {
			t.Fatalf("job %d has no job id", i)
		}
		if seenJobs[st.Job] {
			t.Fatalf("job id %d assigned twice", st.Job)
		}
		seenJobs[st.Job] = true
		deltas := map[string]int64{}
		for _, d := range st.JobDeltas {
			deltas[d.Key()] = d.Value
		}
		if got := deltas["freeride_rows_total"]; got != int64(rows) {
			t.Errorf("job %d: freeride_rows_total = %d, want exactly %d", i, got, rows)
		}
		if got := deltas["freeride_runs_total"]; got != 1 {
			t.Errorf("job %d: freeride_runs_total = %d, want 1", i, got)
		}
		if got := deltas["freeride_splits_total"]; got != int64(st.Splits) {
			t.Errorf("job %d: freeride_splits_total = %d, want %d", i, got, st.Splits)
		}
		if deltas[`freeride_phase_ns_total{phase="reduce"}`] <= 0 {
			t.Errorf("job %d: no reduce-phase time attributed", i)
		}
		e.Release(results[i])
	}
}

// TestRunContextWithJob checks that a caller-minted id is honored (the
// cluster coordinator path) and that the run's trace and event-log entry
// carry it.
func TestRunContextWithJob(t *testing.T) {
	e := New(Config{Threads: 2})
	defer e.Close()
	src := dataset.NewMemorySource(dataset.UniformMatrix(64, 1, 1, 0, 1))

	id := obs.NextJobID()
	res, err := e.RunContextWithJob(context.Background(), sumSpec(), src, id)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Release(res)
	if res.Stats.Job != id {
		t.Fatalf("Stats.Job = %d, want caller-minted %d", res.Stats.Job, id)
	}
	if len(res.Stats.JobDeltas) == 0 {
		t.Fatal("no job deltas recorded")
	}
}

// TestPassHistogramRecords checks the engine observes pass, split, and
// combine latency into the registered histograms.
func TestPassHistogramRecords(t *testing.T) {
	for _, name := range []string{
		"freeride_pass_duration_seconds",
		"freeride_split_duration_seconds",
		"freeride_combine_duration_seconds",
	} {
		if obs.Default.FindHistogram(name) == nil {
			t.Fatalf("histogram %s not registered", name)
		}
	}
	before := obs.Default.FindHistogram("freeride_pass_duration_seconds").State()
	e := New(Config{Threads: 2, Strategy: robj.FullLocking})
	defer e.Close()
	src := dataset.NewMemorySource(dataset.UniformMatrix(256, 1, 1, 0, 1))
	res, err := e.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	e.Release(res)
	d := obs.Default.FindHistogram("freeride_pass_duration_seconds").State().Sub(before)
	if d.Count < 1 {
		t.Fatalf("pass histogram recorded %d observations, want >= 1", d.Count)
	}
	if p99 := d.Quantile(0.99); p99 <= 0 {
		t.Errorf("pass p99 = %g, want > 0", p99)
	}
}
