// Package freeride reimplements the FREERIDE middleware (FRamework for
// Rapid Implementation of Datamining Engines) for multicore machines, after
// the API the paper summarizes in Table I and the processing structure of
// its §III.
//
// FREERIDE's distinguishing choices versus Map-Reduce (Fig. 4 of the paper):
// the reduction object is explicit and updated element-wise as each data
// instance is processed (map and reduce fused into a single step — no
// intermediate (key, value) pairs, no sort/group/shuffle), and the result of
// local reduction must be independent of the order in which instances are
// processed. After each pass over the data the per-thread results are
// combined locally under the chosen shared-memory technique, and a global
// combination (all-to-one, or parallel merge for large objects) produces the
// final reduction object.
//
// The Table-I functions map onto this package as follows:
//
//	reduction_t             → Spec.Reduction (func(*ReductionArgs) error)
//	combination_t           → Spec.Combine (optional; default combination used otherwise)
//	finalize_t              → Spec.Finalize (optional)
//	splitter_t              → Spec.Splitter (optional; default splitter provided)
//	reduction_object_alloc  → Spec.Object{Groups,Elems,Op} allocated by the engine
//	accumulate              → ReductionArgs.Accumulate
//	get_intermediate_result → Result.Object.Get / Result.Object.Snapshot
//
// The package is organized as a persistent execution service: an Engine is a
// session owning a long-lived worker pool plus pooled schedulers and
// reduction objects (engine.go), and each Run submits one job to that pool
// (job.go). This file holds the API surface shared by both: specs, stats,
// splitters, and the global combination helpers.
package freeride

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
	"chapelfreeride/internal/verify"
)

// Engine phase names as recorded in the obs layer: each Run emits one span
// per phase into the run's trace (Stats.Spans, obs.Log) and adds the phase's
// wall time to the cumulative counter freeride_phase_ns_total{phase=...}.
// Together with robj's and sched's counters they quantify the paper's three
// §V overhead sources: split handling (PhaseSplit, sched_*), reduction-object
// access (PhaseLocalCombine, robj_*), and data access (dataset_*).
const (
	PhaseSplit         = "split"
	PhaseReduce        = "reduce"
	PhaseLocalCombine  = "local-combine"
	PhaseCombine       = "combine"
	PhaseFinalize      = "finalize"
	PhaseGlobalCombine = "global-combine"
)

// Phases lists every phase name an engine pass can record.
func Phases() []string {
	return []string{PhaseSplit, PhaseReduce, PhaseLocalCombine, PhaseCombine, PhaseFinalize, PhaseGlobalCombine}
}

// Always-on engine counters. Failed and cancelled passes are counted
// disjointly: a pass that returned ctx.Err() increments only the cancelled
// counter, every other error only the failed one.
var (
	mRuns          = obs.Default.Counter("freeride_runs_total", "engine passes executed")
	mRunsFailed    = obs.Default.Counter("freeride_runs_failed_total", "engine passes that returned a non-cancellation error")
	mRunsCancelled = obs.Default.Counter("freeride_runs_cancelled_total", "engine passes cancelled or timed out via context")
	// Latency histograms: end-to-end pass wall time (success and failure
	// both observed, so tail latency includes error paths), per-split
	// processing time on the workers, and the user-combination phase
	// (observed only when the spec sets Combine; the local merge is a
	// separate phase). Log-bucketed; quantiles via obs.HistState.Quantile.
	hPass    = obs.Default.Histogram("freeride_pass_duration_seconds", "end-to-end engine pass wall time")
	hSplit   = obs.Default.Histogram("freeride_split_duration_seconds", "per-split processing time (read + user reduction + flush)")
	hCombine = obs.Default.Histogram("freeride_combine_duration_seconds", "user combination phase wall time (local merge reported under PhaseLocalCombine, not here)")
	// phaseNS accumulates per-phase wall time in nanoseconds, resolved once
	// at init so the engine never does registry lookups mid-run.
	phaseNS = func() map[string]*obs.Counter {
		m := map[string]*obs.Counter{}
		for _, p := range Phases() {
			m[p] = obs.Default.Counter("freeride_phase_ns_total",
				"cumulative wall time per engine phase, nanoseconds",
				obs.Label{Key: "phase", Value: p})
		}
		return m
	}()
)

// workerCounters is the per-worker counter set, cached per worker id: splits
// claimed, rows (data instances) reduced, busy and idle nanoseconds of the
// reduction phase.
type workerCounters struct {
	splits, rows, busyNS, idleNS *obs.Counter
}

var (
	workerCountersMu sync.Mutex
	workerCountersBy []workerCounters
)

// countersForWorker returns (cached) counters labeled worker="w".
func countersForWorker(w int) workerCounters {
	workerCountersMu.Lock()
	defer workerCountersMu.Unlock()
	for w >= len(workerCountersBy) {
		id := strconv.Itoa(len(workerCountersBy))
		label := obs.Label{Key: "worker", Value: id}
		workerCountersBy = append(workerCountersBy, workerCounters{
			splits: obs.Default.Counter("freeride_worker_splits_total", "splits claimed per worker", label),
			rows:   obs.Default.Counter("freeride_worker_rows_total", "data instances reduced per worker", label),
			busyNS: obs.Default.Counter("freeride_worker_busy_ns_total", "reduction-phase time spent processing splits, nanoseconds", label),
			idleNS: obs.Default.Counter("freeride_worker_idle_ns_total", "reduction-phase time spent waiting (scheduling, stragglers), nanoseconds", label),
		})
	}
	return workerCountersBy[w]
}

// Config controls the engine's parallel execution. The zero value is usable:
// it runs with GOMAXPROCS threads, full replication, dynamic scheduling, and
// a default split size.
type Config struct {
	// Threads is the number of worker goroutines ("one thread is allocated
	// on one CPU" in the paper's experiments). Defaults to GOMAXPROCS(0).
	Threads int
	// Strategy is the shared-memory technique for reduction-object updates.
	// Defaults to robj.FullReplication, FREERIDE's usual best performer.
	Strategy robj.Strategy
	// Scheduler is the split scheduling policy. Defaults to sched.Dynamic.
	Scheduler sched.Policy
	// SplitRows is the number of data instances per split handed to the
	// user reduction function. Defaults to 4096.
	SplitRows int
	// SparseAccCells is the reduction-object cell count at which the fused
	// path degrades its worker-local buffer from the dense cell mirror to a
	// hashed touched-cell map flushed through robj.AccumulateScattered. The
	// dense mirror pays O(cells) per split (identity fill + flush) no matter
	// how few cells the split touches; past this threshold that sweep
	// dominates sparse push reductions, whose splits touch at most one cell
	// per accumulate. 0 means the default (4096, the default split size —
	// i.e. objects at least as large as a split's row count); negative
	// disables the hashed mode entirely.
	SparseAccCells int
}

func (c Config) withDefaults() Config {
	if c.Threads < 1 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.SplitRows < 1 {
		c.SplitRows = 4096
	}
	if c.SparseAccCells == 0 {
		c.SparseAccCells = 4096
	}
	return c
}

// SparseAccEngaged reports whether a fused pass over an object with the
// given cell count runs on the hashed touched-cell accumulator instead of
// the dense mirror: the kernel opted in (ScatterBlock) and the cell count
// crossed SparseAccCells. Exported so translate-time analysis
// (internal/analyze's fused-flush cost model) and the engine's run path
// share one engagement rule; callers must pass a defaults-resolved config
// (Engine.Config(), or after setting SparseAccCells explicitly).
func (c Config) SparseAccEngaged(cells int, scatter bool) bool {
	return scatter && c.SparseAccCells > 0 && cells >= c.SparseAccCells
}

// ReductionArgs mirrors FREERIDE's reduction_args_t: one split of the input
// dataset plus the worker's handle for updating the reduction object.
type ReductionArgs struct {
	// Data holds the split's rows, row-major; len == NumRows*Cols.
	//
	// Data is a borrowed view (see BlockArgs.Data): with zero-copy sources
	// it aliases the source's storage. Read-only, no retention past the
	// call; frds-vet's rowalias analyzer enforces this statically.
	Data []float64
	// NumRows is the number of data instances in this split.
	NumRows int
	// Cols is the number of features per instance.
	Cols int
	// Begin is the global index of the split's first row.
	Begin int
	// Local is the worker's user-managed reduction object when the Spec
	// set LocalInit; nil otherwise.
	Local any

	worker  int
	object  *robj.Object
	scratch [][]float64
}

// Scratch returns per-worker scratch buffer id of length n, reused across
// calls. Kernels use distinct ids for buffers they need simultaneously
// (e.g. the data row and a hot-variable row); the contents are unspecified
// on entry.
func (a *ReductionArgs) Scratch(id, n int) []float64 {
	for id >= len(a.scratch) {
		a.scratch = append(a.scratch, nil)
	}
	if cap(a.scratch[id]) < n {
		a.scratch[id] = make([]float64, n)
	}
	return a.scratch[id][:n]
}

// Row returns instance i of the split.
func (a *ReductionArgs) Row(i int) []float64 {
	return a.Data[i*a.Cols : (i+1)*a.Cols]
}

// Worker reports the id of the worker thread processing this split.
func (a *ReductionArgs) Worker() int { return a.worker }

// Accumulate updates element (group, elem) of the reduction object with v,
// mirroring FREERIDE's accumulate(int, int, void* value). It panics when the
// spec declared no cell-based object.
func (a *ReductionArgs) Accumulate(group, elem int, v float64) {
	if a.object == nil {
		panic("freeride: Accumulate without a cell-based reduction object (spec declared only LocalInit state)")
	}
	a.object.Accumulate(a.worker, group, elem, v)
}

// ObjectSpec describes the reduction object to allocate for a run,
// mirroring reduction_object_alloc: Groups × Elems cells combined with Op.
type ObjectSpec struct {
	Groups int
	Elems  int
	Op     robj.Op
}

// Spec is one reduction pass over the dataset: the user-defined functions of
// Table I plus the reduction-object shape.
type Spec struct {
	// Object describes the reduction object the engine allocates.
	Object ObjectSpec
	// Reduction is the local reduction function: it processes every
	// instance of its split and updates the reduction object through
	// args.Accumulate. Its result must be independent of instance order.
	// Required unless BlockReduction is set.
	Reduction func(args *ReductionArgs) error
	// BlockReduction, when set, is the fused split-granular reduction the
	// engine prefers over Reduction: it receives one whole split and a
	// worker-local dense accumulation buffer (see BlockArgs), and the engine
	// flushes the buffer into the shared object once per split via
	// robj.AccumulateBlock. It requires a cell-based Object and cannot be
	// combined with LocalInit. Specs may set both callbacks: engines (and
	// future execution tiers) without a fused path fall back to Reduction.
	BlockReduction func(args *BlockArgs) error
	// ScatterBlock declares that BlockReduction accumulates exclusively
	// through BlockArgs.Accumulate and never touches the Acc() buffer
	// directly. That contract is what lets the engine substitute the hashed
	// worker-local accumulator for the dense mirror on large objects
	// (Config.SparseAccCells) — a dense fused kernel that walks Acc()
	// in place must leave this false. The sparse translator sets it; results
	// are bit-identical in both accumulator modes.
	ScatterBlock bool
	// Splitter optionally overrides the default splitter. It must partition
	// [0, totalRows) into disjoint, covering chunks. requestedUnits is the
	// engine's hint (derived from Config.SplitRows).
	Splitter func(totalRows, requestedUnits int) []sched.Chunk
	// Combine optionally post-processes the merged reduction object (the
	// paper's combination_t). When nil, the default combination — the
	// element-wise merge under the object's Op — is all that runs.
	Combine func(o *robj.Object) error
	// Finalize optionally runs once at the end (the paper's finalize_t).
	Finalize func(r *Result) error

	// LocalInit, when set, gives each worker a user-managed reduction
	// object in addition to (or instead of) the cell-based Object. This is
	// FREERIDE's "reduction object declared by the programmer" in full
	// generality — needed when the object is not a grid of combinable
	// floats (e.g. k-nearest-neighbour keeps a bounded list of candidates).
	LocalInit func() any
	// LocalCombine merges src into dst and returns the merged object; it
	// is applied across workers in worker order. Required with LocalInit.
	LocalCombine func(dst, src any) any
}

// Verify statically checks the spec's structural legality — the same checks
// run() performs before any worker starts, exposed so callers (and
// cmd/freeride-translate) can report every problem at once as structured
// diagnostics instead of discovering them one error at a time.
func (s Spec) Verify() verify.Diagnostics {
	return verify.CheckSpec(verify.SpecPlan{
		HasReduction:      s.Reduction != nil,
		HasBlockReduction: s.BlockReduction != nil,
		Object:            verify.Shape{Groups: s.Object.Groups, Elems: s.Object.Elems},
		HasLocalInit:      s.LocalInit != nil,
		HasLocalCombine:   s.LocalCombine != nil,
		HasCombine:        s.Combine != nil,
	})
}

// Stats is the timing breakdown of a Run.
type Stats struct {
	// Job is the pass's job id (obs.NextJobID, process-unique). Cluster
	// passes run every node's engine pass under the coordinator's id.
	Job obs.JobID
	// JobDeltas is the pass's exact counter deltas — the job-scoped view of
	// the same increments the process-wide obs registry received, sorted by
	// key. Concurrent jobs on one session never blur into each other here.
	JobDeltas []obs.MetricDelta
	// SplitTime is time spent computing the split table.
	SplitTime time.Duration
	// ReduceTime is the wall time of the parallel local-reduction phase.
	ReduceTime time.Duration
	// LocalCombineTime covers the local-combination phase: the per-worker
	// merge of the cell-based object plus the LocalCombine fold of
	// user-managed state.
	LocalCombineTime time.Duration
	// CombineTime covers the user Combine phase only (0 when the spec set no
	// Combine). Local combination is reported separately under
	// LocalCombineTime; the two phases no longer blur into one number.
	CombineTime time.Duration
	// FinalizeTime covers the user Finalize.
	FinalizeTime time.Duration
	// Splits is the number of splits processed.
	Splits int
	// Threads is the worker count used.
	Threads int
	// WorkerCPU is the CPU time each worker consumed during the local
	// reduction, when the platform supports per-thread accounting (Linux);
	// empty otherwise. Unlike wall time it is unaffected by time-slicing,
	// so it supports scaling estimates on machines with fewer cores than
	// workers.
	WorkerCPU []time.Duration

	// Spans is the run's phase trace: nested spans for every phase plus one
	// span per worker in the reduction phase, ready for obs.EventLog export.
	// Existing phase fields (SplitTime, ReduceTime, ...) remain the coarse
	// view; Spans is the fine-grained one.
	Spans []obs.SpanRecord
	// WorkerSplits is the number of splits each worker claimed.
	WorkerSplits []int64
	// WorkerRows is the number of data instances each worker reduced.
	WorkerRows []int64
	// WorkerBusy is the reduction-phase wall time each worker spent
	// processing splits (reading rows + user reduction); ReduceTime minus
	// WorkerBusy[w] is worker w's idle/wait time.
	WorkerBusy []time.Duration
}

// WorkerIdle returns worker w's reduction-phase idle time: the phase's wall
// time not spent processing splits (scheduler waits, straggler imbalance).
func (s Stats) WorkerIdle(w int) time.Duration {
	if w < 0 || w >= len(s.WorkerBusy) {
		return 0
	}
	if idle := s.ReduceTime - s.WorkerBusy[w]; idle > 0 {
		return idle
	}
	return 0
}

// Total returns the sum of all phases.
func (s Stats) Total() time.Duration {
	return s.SplitTime + s.ReduceTime + s.LocalCombineTime + s.CombineTime + s.FinalizeTime
}

// CPUTotal returns the summed worker CPU time of the reduction phase, or 0
// when per-thread accounting is unavailable.
func (s Stats) CPUTotal() time.Duration {
	var sum time.Duration
	for _, d := range s.WorkerCPU {
		sum += d
	}
	return sum
}

// CPUMax returns the largest per-worker CPU time — the reduction phase's
// critical path on a machine with at least Threads cores.
func (s Stats) CPUMax() time.Duration {
	var max time.Duration
	for _, d := range s.WorkerCPU {
		if d > max {
			max = d
		}
	}
	return max
}

// BalanceSpeedup estimates the parallel speedup of the reduction phase on a
// machine with one core per worker: total CPU work over the critical path.
// It captures load balance and scheduling overhead but assumes perfect
// memory-system scaling. Returns 1 when accounting is unavailable.
func (s Stats) BalanceSpeedup() float64 {
	max := s.CPUMax()
	if max <= 0 {
		return 1
	}
	return float64(s.CPUTotal()) / float64(max)
}

// Result carries the final reduction object and run statistics.
type Result struct {
	// Object is the merged cell-based reduction object, or nil when the
	// spec declared a zero-shaped object and used only LocalInit state.
	Object *robj.Object
	// Local is the merged user-managed reduction object (LocalInit specs).
	Local any
	Stats Stats
}

// DefaultSplitter partitions [0, totalRows) into requestedUnits contiguous
// chunks of near-equal size. It is the middleware-provided splitter_t.
func DefaultSplitter(totalRows, requestedUnits int) []sched.Chunk {
	if totalRows <= 0 {
		return nil
	}
	return appendSplits(nil, totalRows, requestedUnits)
}

// appendSplits is DefaultSplitter appending into buf (reset to length 0),
// so session engines can reuse one split table across passes.
func appendSplits(buf []sched.Chunk, totalRows, requestedUnits int) []sched.Chunk {
	buf = buf[:0]
	if totalRows <= 0 {
		return buf
	}
	if requestedUnits < 1 {
		requestedUnits = 1
	}
	if requestedUnits > totalRows {
		requestedUnits = totalRows
	}
	base := totalRows / requestedUnits
	extra := totalRows % requestedUnits
	begin := 0
	for u := 0; u < requestedUnits; u++ {
		size := base
		if u < extra {
			size++
		}
		buf = append(buf, sched.Chunk{Begin: begin, End: begin + size})
		begin += size
	}
	return buf
}

// ErrNoReduction reports a Spec with neither a Reduction nor a
// BlockReduction function.
var ErrNoReduction = errors.New("freeride: Spec.Reduction (or BlockReduction) is required")

// validateSplits checks that the split table exactly tiles [0, totalRows).
func validateSplits(splits []sched.Chunk, totalRows int) error {
	covered := 0
	prevEnd := 0
	for i, sp := range splits {
		if sp.Begin != prevEnd || sp.End < sp.Begin || sp.End > totalRows {
			return fmt.Errorf("freeride: splitter produced bad split %d: %+v", i, sp)
		}
		covered += sp.Len()
		prevEnd = sp.End
	}
	if covered != totalRows {
		return fmt.Errorf("freeride: splitter covered %d of %d rows", covered, totalRows)
	}
	return nil
}

// GlobalCombine merges the reduction objects produced by several engine runs
// (e.g. one per node in a cluster) into the first, using the all-to-one
// combination the paper describes for the global phase. Results that carry
// only user-managed Local state (LocalInit-only specs leave Object nil) are
// rejected with a descriptive error — merge those with GlobalCombineLocal.
func GlobalCombine(results []*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, errors.New("freeride: GlobalCombine of no results")
	}
	t0 := time.Now()
	out := results[0]
	if out == nil || out.Object == nil {
		return nil, errors.New("freeride: GlobalCombine needs cell-based reduction objects; " +
			"results carrying only LocalInit state are merged with GlobalCombineLocal")
	}
	for i, r := range results[1:] {
		if r == nil || r.Object == nil {
			return nil, fmt.Errorf("freeride: GlobalCombine: result %d has no reduction object", i+1)
		}
		if err := out.Object.CombineFrom(r.Object); err != nil {
			return nil, err
		}
	}
	phaseNS[PhaseGlobalCombine].Add(int64(time.Since(t0)))
	return out, nil
}

// GlobalCombineLocal merges results carrying user-managed LocalInit state:
// combine (the spec's LocalCombine) folds every Local into the first
// result's, in result order. When the results also carry cell-based objects
// those are folded too, so mixed specs need only one call.
func GlobalCombineLocal(results []*Result, combine func(dst, src any) any) (*Result, error) {
	if len(results) == 0 {
		return nil, errors.New("freeride: GlobalCombineLocal of no results")
	}
	if combine == nil {
		return nil, errors.New("freeride: GlobalCombineLocal needs the spec's LocalCombine function")
	}
	t0 := time.Now()
	out := results[0]
	if out == nil {
		return nil, errors.New("freeride: GlobalCombineLocal: nil result 0")
	}
	merged := out.Local
	for i, r := range results[1:] {
		if r == nil {
			return nil, fmt.Errorf("freeride: GlobalCombineLocal: nil result %d", i+1)
		}
		merged = combine(merged, r.Local)
		if out.Object != nil && r.Object != nil {
			if err := out.Object.CombineFrom(r.Object); err != nil {
				return nil, err
			}
		}
	}
	out.Local = merged
	phaseNS[PhaseGlobalCombine].Add(int64(time.Since(t0)))
	return out, nil
}
