package freeride

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chapelfreeride/internal/cputime"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// job is one reduction pass in flight on the engine's worker pool. The
// submitting goroutine builds it, enqueues one ticket per worker slot, and
// waits on done; pool workers execute runSlot per ticket. All per-slot
// fields are indexed by slot id, so concurrent slots never share an element.
type job struct {
	ctx        context.Context
	spec       Spec
	reader     dataset.Reader
	splits     []sched.Chunk
	sched      sched.Scheduler
	obj        *robj.Object
	cols       int
	threads    int
	measureCPU bool
	// sparseAcc marks a fused job whose object crossed Config.SparseAccCells:
	// worker slots accumulate into hashed touched-cell maps instead of dense
	// mirrors and flush through AccumulateScattered.
	sparseAcc bool

	stop     atomic.Bool
	errOnce  sync.Once
	firstErr error

	jm           *obs.JobMetrics
	locals       []any
	workerCPU    []time.Duration
	workerSplits []int64
	workerRows   []int64
	workerBusy   []time.Duration

	// pending counts tickets not yet finished; the last finisher closes
	// done, which is the submitter's happens-before barrier for every
	// per-slot write above.
	pending atomic.Int32
	done    chan struct{}

	reduceSpan *obs.Span
}

func (j *job) setErr(err error) {
	j.stop.Store(true)
	j.errOnce.Do(func() { j.firstErr = err })
}

// finishTickets retires n tickets; the final one completes the job.
func (j *job) finishTickets(n int32) {
	if j.pending.Add(-n) == 0 {
		close(j.done)
	}
}

// runSlot executes worker slot `slot` of the job on a pool worker: drain the
// scheduler, read each split through the job's Reader into the worker's
// persistent buffer, and run the user reduction. The finishTickets defer is
// registered first so it runs last — after every other per-slot write — and
// closing done publishes them to the submitter.
func (j *job) runSlot(slot int, ws *workerState) {
	defer j.finishTickets(1)
	// A slot whose job already failed or was cancelled while its ticket sat
	// in the queue (a cancel mid-enqueue, a sibling slot's error) bails out
	// before any setup: no spans, no LocalInit user code, and — critically —
	// no scheduler traffic. Orphan tickets of a dead job retire for free.
	if j.stop.Load() {
		return
	}
	if j.measureCPU {
		start := cputime.ThreadCPU()
		defer func() { j.workerCPU[slot] = cputime.ThreadCPU() - start }()
	}
	wSpan := j.reduceSpan.Child("worker")
	wSpan.SetWorker(slot)
	defer wSpan.End()
	var blockFlushes, rowsFused int64
	defer func() {
		wc := countersForWorker(slot)
		wc.splits.Add(j.workerSplits[slot])
		wc.rows.Add(j.workerRows[slot])
		wc.busyNS.Add(int64(j.workerBusy[slot]))
		// Job-scoped deltas flush once per slot, not per split, so the hot
		// loop pays no extra locking and the alloc guards stay flat.
		j.jm.Add("freeride_splits_total", j.workerSplits[slot])
		j.jm.Add("freeride_rows_total", j.workerRows[slot])
		j.jm.Add("freeride_busy_ns_total", int64(j.workerBusy[slot]))
		j.jm.Add("freeride_block_flushes_total", blockFlushes)
		j.jm.Add("freeride_rows_fused_total", rowsFused)
	}()
	// Fused path: validated by run() to imply a cell-based object and no
	// LocalInit. The worker-local accumulation buffer comes from the pool
	// worker's persistent state, so steady-state fused passes allocate
	// nothing per split.
	useBlock := j.spec.BlockReduction != nil && j.obj != nil
	var bargs BlockArgs
	var accID float64
	args := ReductionArgs{Cols: j.cols, worker: slot, object: j.obj, scratch: ws.scratch}
	if useBlock {
		bargs = BlockArgs{
			Cols:    j.cols,
			worker:  slot,
			op:      j.obj.Op(),
			groups:  j.obj.Groups(),
			elems:   j.obj.ElemsPerGroup(),
			scratch: ws.scratch,
		}
		if j.sparseAcc {
			// Sparse fused path: the object is large relative to a split, so
			// the dense mirror's per-split O(cells) sweep would dominate.
			// Accumulate lands in the worker's pooled hashed map instead.
			if ws.hash == nil {
				ws.hash = newCellHash()
			}
			ws.hash.reset()
			bargs.hash = ws.hash
		} else {
			cells := bargs.groups * bargs.elems
			if cap(ws.acc) < cells {
				ws.acc = make([]float64, cells)
			}
			bargs.acc = ws.acc[:cells]
			accID = bargs.op.Identity()
			fillIdentity(bargs.acc, accID)
		}
		// Keep whatever scratch growth the kernel caused for the next pass.
		defer func() { ws.scratch = bargs.scratch }()
	} else {
		defer func() { ws.scratch = args.scratch }()
	}
	if j.spec.LocalInit != nil {
		args.Local = j.spec.LocalInit()
		// The reduction function may replace args.Local (e.g. to grow a
		// slice); capture the final value when the slot finishes.
		defer func() { j.locals[slot] = args.Local }()
	}
	done := j.ctx.Done()
	for {
		if j.stop.Load() {
			return
		}
		select {
		case <-done:
			j.setErr(j.ctx.Err())
			return
		default:
		}
		ci, ok := j.sched.Next(slot)
		if !ok {
			return
		}
		for si := ci.Begin; si < ci.End; si++ {
			if j.stop.Load() {
				return
			}
			sp := j.splits[si]
			n := sp.Len()
			splitStart := time.Now()
			data, err := j.reader.Read(j.ctx, sp.Begin, sp.End, &ws.buf)
			if err != nil {
				j.setErr(err)
				return
			}
			if useBlock {
				bargs.Data = data
				bargs.NumRows = n
				bargs.Begin = sp.Begin
				if err := j.spec.BlockReduction(&bargs); err != nil {
					j.setErr(err)
					return
				}
				// One bulk synchronization event per split, then re-arm the
				// local buffer: scattered flush of the touched cells on the
				// sparse path, dense merge + identity refill otherwise.
				if bargs.hash != nil {
					j.obj.AccumulateScattered(slot, bargs.hash.cells, bargs.hash.vals)
					bargs.hash.reset()
					mScatterFlushes.Inc()
				} else {
					j.obj.AccumulateBlock(slot, bargs.acc)
					fillIdentity(bargs.acc, accID)
				}
				mBlockFlushes.Inc()
				mRowsFused.Add(int64(n))
				blockFlushes++
				rowsFused += int64(n)
			} else {
				args.Data = data
				args.NumRows = n
				args.Begin = sp.Begin
				if err := j.spec.Reduction(&args); err != nil {
					j.setErr(err)
					return
				}
			}
			splitDur := time.Since(splitStart)
			hSplit.ObserveDuration(splitDur)
			j.workerBusy[slot] += splitDur
			j.workerSplits[slot]++
			j.workerRows[slot] += int64(n)
		}
	}
}

// Run executes one reduction pass: split, parallel local reduction, local
// combination, user combination, finalize. The returned Result's Object is
// merged and ready for Get/Snapshot; hand it back with Engine.Release when
// done to let the next pass reuse the allocation.
func (e *Engine) Run(spec Spec, src dataset.Source) (*Result, error) {
	return e.run(context.Background(), spec, src, nil, 0)
}

// RunContext is Run under a context: workers check for cancellation between
// splits and stop draining the scheduler, in-flight reads through
// context-aware sources (dataset.ContextSource) are abandoned, and the call
// returns ctx.Err() promptly — even while a worker is still blocked inside a
// slow source read. First error wins; a cancelled run returns no partial
// result.
func (e *Engine) RunContext(ctx context.Context, spec Spec, src dataset.Source) (*Result, error) {
	return e.run(ctx, spec, src, nil, 0)
}

// RunContextWithJob is RunContext under a caller-minted job id, so a
// coordinator (the cluster layer) can run several node engine passes under
// one job and aggregate their traces and counter deltas. A zero id mints a
// fresh one, making it equivalent to RunContext.
func (e *Engine) RunContextWithJob(ctx context.Context, spec Spec, src dataset.Source, job obs.JobID) (*Result, error) {
	return e.run(ctx, spec, src, nil, job)
}

// RunInto is Run reusing the reduction object of a previous Result: reuse
// is Reset and refilled in place. It predates the engine's session pool —
// new code can simply Run and Release, which pools objects without manual
// plumbing — but remains for callers that want explicit control. reuse must
// have been produced by a prior Run with the same object shape, operator,
// sharing strategy, and thread count.
func (e *Engine) RunInto(spec Spec, src dataset.Source, reuse *robj.Object) (*Result, error) {
	return e.RunIntoContext(context.Background(), spec, src, reuse)
}

// RunIntoContext is RunInto under a context, with RunContext's cancellation
// semantics. A cancelled or failed pass leaves reuse partially filled; Reset
// it (or hand it back to RunInto, which Resets) before reusing.
func (e *Engine) RunIntoContext(ctx context.Context, spec Spec, src dataset.Source, reuse *robj.Object) (*Result, error) {
	if reuse == nil {
		return nil, errors.New("freeride: RunInto needs a reduction object to reuse")
	}
	if reuse.Groups() != spec.Object.Groups || reuse.ElemsPerGroup() != spec.Object.Elems ||
		reuse.Op() != spec.Object.Op {
		return nil, fmt.Errorf("freeride: RunInto object %dx%d/%v does not match spec %dx%d/%v",
			reuse.Groups(), reuse.ElemsPerGroup(), reuse.Op(),
			spec.Object.Groups, spec.Object.Elems, spec.Object.Op)
	}
	if reuse.Strategy() != e.cfg.Strategy || reuse.Workers() != e.cfg.Threads {
		return nil, fmt.Errorf("freeride: RunInto object built for %v/%d workers, engine uses %v/%d — "+
			"objects are engine-scoped; instead of carrying one across engines, use the session pool: "+
			"Run on the target engine and hand finished results back with Release",
			reuse.Strategy(), reuse.Workers(), e.cfg.Strategy, e.cfg.Threads)
	}
	reuse.Reset()
	return e.run(ctx, spec, src, reuse, 0)
}

// run validates the spec, submits one job to the worker pool, waits for it,
// and assembles the Result, preserving the one-shot engine's semantics:
// first error wins, cancellation returns promptly even past a blocked
// straggler, failed and cancelled passes are counted disjointly, and a
// source with zero rows yields an identity-valued reduction object (no
// splits are scheduled, so the merged object holds the Op's identity in
// every cell).
func (e *Engine) run(ctx context.Context, spec Spec, src dataset.Source, obj *robj.Object, jobID obs.JobID) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Reduction == nil && spec.BlockReduction == nil {
		// Kept as a sentinel (errors.Is) ahead of the full verifier pass.
		return nil, ErrNoReduction
	}
	if src == nil {
		return nil, errors.New("freeride: nil data source")
	}
	// Structural spec legality — one verifier pass replaces the scattered
	// per-condition errors, so a bad spec is rejected with every finding
	// attached before any worker starts.
	if err := spec.Verify().Err(); err != nil {
		return nil, err
	}
	cfg := e.cfg
	if obj == nil && (spec.Object.Groups != 0 || spec.Object.Elems != 0) {
		var err error
		obj, err = e.objects.Get(cfg.Strategy, spec.Object.Op, spec.Object.Groups, spec.Object.Elems, cfg.Threads)
		if err != nil {
			return nil, err
		}
	}
	if err := e.Start(); err != nil {
		return nil, err
	}
	res := &Result{Object: obj}
	res.Stats.Threads = cfg.Threads
	mRuns.Inc()
	mJobs.Inc()
	jobsInflight.Add(1)
	defer jobsInflight.Add(-1)
	if jobID == 0 {
		jobID = obs.NextJobID()
	}
	jm := obs.NewJobMetrics(jobID)
	jm.Add("freeride_runs_total", 1)
	res.Stats.Job = jobID
	passStart := time.Now()
	tr := obs.NewTrace()
	tr.SetJob(jobID)
	runSpan := tr.Start("run")
	// fail finishes the run on an error path: any still-open child spans are
	// ended, the run span closes, and the partial trace is flushed to obs.Log
	// so failed runs stay visible in the event log instead of vanishing.
	fail := func(err error, open ...*obs.Span) (*Result, error) {
		for _, s := range open {
			s.End()
		}
		runSpan.End()
		hPass.ObserveDuration(time.Since(passStart))
		obs.Log.AddRun(jobID, tr.Records())
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			mRunsCancelled.Inc()
			jm.Add("freeride_runs_cancelled_total", 1)
		} else {
			mRunsFailed.Inc()
			jm.Add("freeride_runs_failed_total", 1)
		}
		return nil, err
	}

	// addPhase records one phase's wall time both process-wide and job-scoped.
	addPhase := func(phase string, d time.Duration) {
		phaseNS[phase].Add(int64(d))
		jm.Add("freeride_phase_ns_total", int64(d), obs.Label{Key: "phase", Value: phase})
	}

	// Split phase. The default splitter fills a pooled per-engine table;
	// custom splitters own their return value, so theirs is not pooled.
	splitSpan := runSpan.Child(PhaseSplit)
	t0 := time.Now()
	units := (src.NumRows() + cfg.SplitRows - 1) / cfg.SplitRows
	var splits []sched.Chunk
	pooledSplits := spec.Splitter == nil
	if pooledSplits {
		splits = appendSplits(e.takeSplitBuf(), src.NumRows(), units)
	} else {
		splits = spec.Splitter(src.NumRows(), units)
	}
	splitErr := validateSplits(splits, src.NumRows())
	res.Stats.SplitTime = time.Since(t0)
	splitSpan.End()
	addPhase(PhaseSplit, res.Stats.SplitTime)
	if splitErr != nil {
		return fail(splitErr)
	}
	res.Stats.Splits = len(splits)

	// Parallel local reduction: submit one ticket per worker slot to the
	// pool. The first error (or cancellation) flips the stop flag, so the
	// surviving slots park at their next split boundary instead of draining
	// the whole scheduler against a run that has already failed.
	reduceSpan := runSpan.Child(PhaseReduce)
	t0 = time.Now()
	j := &job{
		ctx:          ctx,
		spec:         spec,
		jm:           jm,
		reader:       dataset.NewReader(src),
		splits:       splits,
		sched:        e.acquireSched(len(splits)),
		obj:          obj,
		cols:         src.Cols(),
		threads:      cfg.Threads,
		measureCPU:   cputime.Supported(),
		sparseAcc:    sparseAccFor(cfg, spec, obj),
		locals:       make([]any, cfg.Threads),
		workerCPU:    make([]time.Duration, cfg.Threads),
		workerSplits: make([]int64, cfg.Threads),
		workerRows:   make([]int64, cfg.Threads),
		workerBusy:   make([]time.Duration, cfg.Threads),
		done:         make(chan struct{}),
		reduceSpan:   reduceSpan,
	}
	j.pending.Store(int32(cfg.Threads))
	e.enqueue(ctx, j)

	abandoned := false
	select {
	case <-j.done:
	case <-ctx.Done():
		// Cancelled mid-phase: flag the stop and give the slots a short
		// grace to observe it. If one is still blocked inside a slow source
		// read after that, return ctx.Err() promptly anyway — the straggler
		// exits at its next cancellation check and touches only job-local
		// state the abandoned pass never reads.
		j.setErr(ctx.Err())
		grace := time.NewTimer(50 * time.Millisecond)
		select {
		case <-j.done:
			grace.Stop()
		case <-grace.C:
			abandoned = true
		}
	}
	if abandoned {
		// The straggler still holds the scheduler and split table, so they
		// are dropped for the GC instead of returned to the pools.
		addPhase(PhaseReduce, time.Since(t0))
		return fail(ctx.Err(), reduceSpan)
	}
	e.releaseSched(j.sched)
	if pooledSplits {
		e.putSplitBuf(splits)
	}
	res.Stats.ReduceTime = time.Since(t0)
	reduceSpan.End()
	addPhase(PhaseReduce, res.Stats.ReduceTime)
	if j.measureCPU {
		res.Stats.WorkerCPU = j.workerCPU
	}
	res.Stats.WorkerSplits = j.workerSplits
	res.Stats.WorkerRows = j.workerRows
	res.Stats.WorkerBusy = j.workerBusy
	for w := 0; w < cfg.Threads; w++ {
		countersForWorker(w).idleNS.Add(int64(res.Stats.WorkerIdle(w)))
	}
	if j.firstErr != nil {
		return fail(j.firstErr)
	}

	// Local combination (default combination function) + user combination.
	// Each phase is measured from its own start: CombineTime (and the
	// freeride_combine histogram) covers only the user-combination phase —
	// folding the local merge into it would double-count work already
	// reported under PhaseLocalCombine.
	t0 = time.Now()
	lcSpan := runSpan.Child(PhaseLocalCombine)
	if obj != nil {
		obj.Merge()
	}
	if spec.LocalInit != nil {
		merged := j.locals[0]
		for _, l := range j.locals[1:] {
			merged = spec.LocalCombine(merged, l)
		}
		res.Local = merged
	}
	lcSpan.End()
	res.Stats.LocalCombineTime = time.Since(t0)
	addPhase(PhaseLocalCombine, res.Stats.LocalCombineTime)
	if spec.Combine != nil {
		tc := time.Now()
		cSpan := runSpan.Child(PhaseCombine)
		err := spec.Combine(obj)
		cSpan.End()
		res.Stats.CombineTime = time.Since(tc)
		addPhase(PhaseCombine, res.Stats.CombineTime)
		hCombine.ObserveDuration(res.Stats.CombineTime)
		if err != nil {
			return fail(err)
		}
	}

	// Finalize.
	if spec.Finalize != nil {
		t0 = time.Now()
		fSpan := runSpan.Child(PhaseFinalize)
		err := spec.Finalize(res)
		fSpan.End()
		res.Stats.FinalizeTime = time.Since(t0)
		addPhase(PhaseFinalize, res.Stats.FinalizeTime)
		if err != nil {
			return fail(err)
		}
	}
	runSpan.End()
	hPass.ObserveDuration(time.Since(passStart))
	res.Stats.Spans = tr.Records()
	res.Stats.JobDeltas = jm.Deltas()
	obs.Log.AddRun(jobID, res.Stats.Spans)
	return res, nil
}

// sparseAccFor decides whether a fused job runs on the hashed worker-local
// accumulator: the spec opted in (ScatterBlock — the kernel accumulates
// only through BlockArgs.Accumulate, so the engine may swap the buffer)
// and the object's cell count has crossed Config.SparseAccCells (negative
// disables the mode; withDefaults resolved 0 to the default threshold).
// Dense fused kernels that walk Acc() directly never set ScatterBlock and
// always keep the dense mirror, whatever their object size.
func sparseAccFor(cfg Config, spec Spec, obj *robj.Object) bool {
	if spec.BlockReduction == nil || obj == nil {
		return false
	}
	return cfg.SparseAccEngaged(obj.Groups()*obj.ElemsPerGroup(), spec.ScatterBlock)
}

// enqueue sends the job's tickets to the pool. Tickets not sent — because
// the engine closed underneath us or the context was cancelled while the
// channel was full — are retired immediately so the job still completes.
func (e *Engine) enqueue(ctx context.Context, j *job) {
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.isClosed() {
		j.setErr(ErrEngineClosed)
		j.finishTickets(int32(j.threads))
		return
	}
	for slot := 0; slot < j.threads; slot++ {
		select {
		case e.tickets <- ticket{j: j, slot: slot}:
		case <-ctx.Done():
			j.setErr(ctx.Err())
			j.finishTickets(int32(j.threads - slot))
			return
		}
	}
}
