package freeride

import (
	"fmt"
	"path/filepath"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// boxingSource strips every optional capability from a source: reads go
// through ReadRows copies only, so the engine takes the boxed path. The
// reference side of the zero-copy equivalence property.
type boxingSource struct{ src dataset.Source }

func (s boxingSource) NumRows() int { return s.src.NumRows() }
func (s boxingSource) Cols() int    { return s.src.Cols() }
func (s boxingSource) ReadRows(begin, end int, dst []float64) error {
	return s.src.ReadRows(begin, end, dst)
}

// guardSource is a RowSlicer memory source that detects mutation of its
// backing array: views handed to the engine alias guarded storage, and
// check() compares it word-for-word against a pristine copy after the run.
// Catches an engine or kernel writing through a borrowed row view — the
// runtime counterpart of frds-vet's rowalias analyzer.
type guardSource struct {
	data     []float64
	pristine []float64
	rows     int
	cols     int
}

func newGuardSource(m *dataset.Matrix) *guardSource {
	g := &guardSource{data: m.Data, rows: m.Rows, cols: m.Cols}
	g.pristine = append([]float64(nil), m.Data...)
	return g
}

func (g *guardSource) NumRows() int { return g.rows }
func (g *guardSource) Cols() int    { return g.cols }
func (g *guardSource) ReadRows(begin, end int, dst []float64) error {
	copy(dst, g.data[begin*g.cols:end*g.cols])
	return nil
}
func (g *guardSource) Rows(begin, end int) []float64 {
	return g.data[begin*g.cols : end*g.cols]
}
func (g *guardSource) check() error {
	for i := range g.data {
		if g.data[i] != g.pristine[i] {
			return fmt.Errorf("backing array mutated at word %d: %v -> %v", i, g.pristine[i], g.data[i])
		}
	}
	return nil
}

// intMatrix builds integer-valued data so float accumulation is exact and
// results are bit-identical under any accumulation order — which is what
// lets the property compare across schedulers and strategies directly.
func intMatrix(rows, cols int) *dataset.Matrix {
	m := dataset.NewMatrix(rows, cols)
	r := int64(29)
	for i := range m.Data {
		r = r*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(uint64(r) >> 40 % 64)
	}
	return m
}

func zcSpec(groups int) Spec {
	return Spec{
		Object: ObjectSpec{Groups: groups, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				g := int(row[0]) % 16
				a.Accumulate(g, 0, 1)
				a.Accumulate(g, 1, row[1])
			}
			return nil
		},
	}
}

// TestZeroCopyMatchesBoxed is the aliasing-safety property for RowSlicer
// ingestion: across schedulers × strategies × thread counts, a pass over a
// zero-copy source (mmap-backed file, and a mutation-detecting memory
// guard) is bit-identical to the same pass over the boxed copy path, and
// the zero-copy backing array comes out untouched.
func TestZeroCopyMatchesBoxed(t *testing.T) {
	const rows, cols, groups = 20_000, 3, 16
	m := intMatrix(rows, cols)
	path := filepath.Join(t.TempDir(), "zc.frds")
	if err := dataset.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	mapped, err := dataset.OpenMappedSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	guard := newGuardSource(m)
	spec := zcSpec(groups)

	for _, threads := range []int{1, 3} {
		for _, pol := range sched.Policies() {
			for _, strat := range robj.Strategies() {
				name := fmt.Sprintf("t%d/%v/%v", threads, pol, strat)
				eng := New(Config{Threads: threads, SplitRows: 512, Scheduler: pol, Strategy: strat})
				runSnapshot := func(src dataset.Source) []float64 {
					res, err := eng.Run(spec, src)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					snap := res.Object.Snapshot()
					if err := eng.Release(res); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					return snap
				}
				boxed := runSnapshot(boxingSource{guard})
				zcMapped := runSnapshot(mapped)
				zcGuard := runSnapshot(guard)
				for i := range boxed {
					if boxed[i] != zcMapped[i] {
						t.Fatalf("%s: mapped zero-copy cell %d = %v, boxed %v", name, i, zcMapped[i], boxed[i])
					}
					if boxed[i] != zcGuard[i] {
						t.Fatalf("%s: guard zero-copy cell %d = %v, boxed %v", name, i, zcGuard[i], boxed[i])
					}
				}
				if err := eng.Close(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		}
	}
	if err := guard.check(); err != nil {
		t.Fatalf("zero-copy pass mutated the source: %v", err)
	}
}

// TestZeroCopyFusedMatchesBoxed runs the same property through the fused
// BlockReduction path, whose kernels consume the borrowed block view
// directly.
func TestZeroCopyFusedMatchesBoxed(t *testing.T) {
	const rows, cols, groups = 20_000, 3, 16
	m := intMatrix(rows, cols)
	guard := newGuardSource(m)
	spec := Spec{
		Object: ObjectSpec{Groups: groups, Elems: 2, Op: robj.OpAdd},
		BlockReduction: func(a *BlockArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				g := int(row[0]) % 16
				a.Accumulate(g, 0, 1)
				a.Accumulate(g, 1, row[2])
			}
			return nil
		},
	}
	for _, pol := range []sched.Policy{sched.Static, sched.Dynamic} {
		eng := New(Config{Threads: 3, SplitRows: 256, Scheduler: pol})
		run := func(src dataset.Source) []float64 {
			res, err := eng.Run(spec, src)
			if err != nil {
				t.Fatal(err)
			}
			snap := res.Object.Snapshot()
			if err := eng.Release(res); err != nil {
				t.Fatal(err)
			}
			return snap
		}
		boxed := run(boxingSource{guard})
		zc := run(guard)
		for i := range boxed {
			if boxed[i] != zc[i] {
				t.Fatalf("%v: fused zero-copy cell %d = %v, boxed %v", pol, i, zc[i], boxed[i])
			}
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := guard.check(); err != nil {
		t.Fatalf("fused zero-copy pass mutated the source: %v", err)
	}
}
