package freeride

// Fused split-granular execution ("opt-3"). The per-element path pays three
// costs per data instance that the paper's compiled C output never would: an
// interface-dispatched Reduction call, a branch per Vec access, and a
// strategy lock/CAS acquisition per Accumulate. A Spec that sets
// BlockReduction instead hands the worker one whole split at a time: the
// kernel walks the flat row block directly and accumulates into a
// worker-local dense buffer (no synchronization), and the engine flushes
// that buffer into the shared reduction object once per split through
// robj.AccumulateBlock — one lock acquisition or CAS loop per cell-range per
// split instead of per element.

import (
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// Fused-path counters: one flush per split processed by a BlockReduction
// kernel, and the data instances those kernels covered. rows_fused and the
// per-worker freeride_worker_rows_total move together; comparing
// block_flushes against robj_updates_total shows the synchronization events
// the fusion removed.
var (
	mBlockFlushes = obs.Default.Counter("freeride_block_flushes_total",
		"worker-local dense block buffers flushed into the shared reduction object (one per split on the fused path)")
	mRowsFused = obs.Default.Counter("freeride_rows_fused_total",
		"data instances processed by split-granular BlockReduction kernels")
	mScatterFlushes = obs.Default.Counter("freeride_scatter_flushes_total",
		"worker-local hashed accumulators flushed through robj.AccumulateScattered (sparse fused path)")
)

// BlockArgs is the split-granular counterpart of ReductionArgs: one split of
// the input plus a worker-local dense accumulation buffer mirroring the
// reduction object's cells. The kernel accumulates into the buffer — via
// Accumulate for the generic form or directly through Acc() for specialized
// kernels — and the engine flushes it into the shared object after the
// kernel returns, then resets it to the operator's identity for the next
// split.
type BlockArgs struct {
	// Data holds the split's rows, row-major; len == NumRows*Cols.
	//
	// Data is a borrowed view: for zero-copy sources (RowSlicer — memory
	// sources, mapped dataset files) it aliases the source's backing storage
	// directly. Kernels must treat it as read-only and must not retain it —
	// no storing the slice (or a sub-slice) past the call, no appending to
	// it, no writing through it. Violations corrupt shared data or fault
	// after the source unmaps; frds-vet's rowalias analyzer flags them
	// statically.
	Data []float64
	// NumRows is the number of data instances in this split.
	NumRows int
	// Cols is the number of features per instance.
	Cols int
	// Begin is the global index of the split's first row.
	Begin int

	worker        int
	op            robj.Op
	groups, elems int
	acc           []float64
	hash          *cellHash
	scratch       [][]float64
}

// Row returns instance i of the split.
func (a *BlockArgs) Row(i int) []float64 {
	return a.Data[i*a.Cols : (i+1)*a.Cols]
}

// Worker reports the id of the worker thread processing this split.
func (a *BlockArgs) Worker() int { return a.worker }

// Groups reports the reduction object's group count.
func (a *BlockArgs) Groups() int { return a.groups }

// Elems reports the reduction object's elements per group.
func (a *BlockArgs) Elems() int { return a.elems }

// Acc returns the worker-local accumulation buffer: Groups()×Elems() cells,
// group-major, identity-valued on entry to the kernel. Specialized kernels
// update it directly (acc[group*Elems()+elem]) to skip Accumulate's bounds
// check and operator dispatch. Acc returns nil when the engine chose the
// hashed accumulator for this job (Config.SparseAccCells) — kernels that
// write the dense buffer directly are dense-touch by construction, so they
// should route any sparse-shaped object through Accumulate instead.
func (a *BlockArgs) Acc() []float64 { return a.acc }

// Sparse reports whether this job runs on the hashed worker-local
// accumulator instead of the dense mirror.
func (a *BlockArgs) Sparse() bool { return a.hash != nil }

// Accumulate folds v into local cell (group, elem) under the object's
// operator. Unlike ReductionArgs.Accumulate it touches only the worker-local
// buffer — no lock, no CAS — and the engine synchronizes once per split at
// flush time. The buffer is the dense cell mirror by default; when the
// reduction object is large relative to a split (Config.SparseAccCells) the
// engine degrades it to a hashed touched-cell map, and the dispatch here is
// the only place the kernel can tell the difference.
func (a *BlockArgs) Accumulate(group, elem int, v float64) {
	if group < 0 || group >= a.groups || elem < 0 || elem >= a.elems {
		panic("freeride: BlockArgs.Accumulate out of range")
	}
	i := group*a.elems + elem
	if a.hash != nil {
		a.hash.add(int32(i), v, a.op)
		return
	}
	a.acc[i] = a.op.Apply(a.acc[i], v)
}

// Scratch returns per-worker scratch buffer id of length n, reused across
// calls; same contract as ReductionArgs.Scratch.
func (a *BlockArgs) Scratch(id, n int) []float64 {
	for id >= len(a.scratch) {
		a.scratch = append(a.scratch, nil)
	}
	if cap(a.scratch[id]) < n {
		a.scratch[id] = make([]float64, n)
	}
	return a.scratch[id][:n]
}

func fillIdentity(s []float64, id float64) {
	for i := range s {
		s[i] = id
	}
}

// cellHash is the sparse counterpart of the fused path's dense accumulation
// buffer: an open-addressed map from touched cell index to accumulated value.
// Where the dense buffer costs O(cells) to identity-fill and flush every
// split, the hash costs O(touched) — the win the inspector–executor model
// needs when the reduction object (a row vector over a large sparse matrix)
// dwarfs the number of cells any one split scatters into.
//
// Layout: table is the probe array holding index+1 into cells (0 = empty),
// with power-of-two capacity; cells/vals record the touched cells in first-
// touch order, which is also the flush order handed to AccumulateScattered.
// It lives in workerState, so steady-state sparse passes allocate nothing.
type cellHash struct {
	table []int32
	mask  uint32
	cells []int32
	vals  []float64
}

const cellHashMinCap = 64

func newCellHash() *cellHash {
	return &cellHash{table: make([]int32, cellHashMinCap), mask: cellHashMinCap - 1}
}

// slotFor probes for cell c and returns its table slot: either the slot
// already holding c or the first empty slot of its run.
func (h *cellHash) slotFor(c int32) uint32 {
	// Fibonacci hashing spreads the low-entropy cell indices sparse
	// executors produce (consecutive matrix rows) across the table.
	s := (uint32(c) * 0x9E3779B9) & h.mask
	for {
		ref := h.table[s]
		if ref == 0 || h.cells[ref-1] == c {
			return s
		}
		s = (s + 1) & h.mask
	}
}

// add folds v into cell c under op, inserting the cell on first touch.
// First-touch stores v directly: op.Apply(op.Identity(), v) == v by the
// operator's identity law, so no identity fill is ever needed.
func (h *cellHash) add(c int32, v float64, op robj.Op) {
	s := h.slotFor(c)
	if ref := h.table[s]; ref != 0 {
		h.vals[ref-1] = op.Apply(h.vals[ref-1], v)
		return
	}
	h.cells = append(h.cells, c)
	h.vals = append(h.vals, v)
	h.table[s] = int32(len(h.cells))
	// Grow at 3/4 load so probe runs stay short.
	if uint32(len(h.cells)) > h.mask-h.mask/4 {
		h.grow()
	}
}

func (h *cellHash) grow() {
	h.table = make([]int32, 2*len(h.table))
	h.mask = uint32(len(h.table) - 1)
	for i, c := range h.cells {
		h.table[h.slotFor(c)] = int32(i + 1)
	}
}

// reset clears the map for the next split, keeping capacity. The table is
// zeroed whole: its capacity tracks the high-water touched-cell count of the
// worker (not the object size), so the clear is proportional to real past
// work, and zeroing the probe array wholesale is the only clearing order
// that cannot orphan a displaced run member.
func (h *cellHash) reset() {
	clear(h.table)
	h.cells = h.cells[:0]
	h.vals = h.vals[:0]
}
