package freeride

// Fused split-granular execution ("opt-3"). The per-element path pays three
// costs per data instance that the paper's compiled C output never would: an
// interface-dispatched Reduction call, a branch per Vec access, and a
// strategy lock/CAS acquisition per Accumulate. A Spec that sets
// BlockReduction instead hands the worker one whole split at a time: the
// kernel walks the flat row block directly and accumulates into a
// worker-local dense buffer (no synchronization), and the engine flushes
// that buffer into the shared reduction object once per split through
// robj.AccumulateBlock — one lock acquisition or CAS loop per cell-range per
// split instead of per element.

import (
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// Fused-path counters: one flush per split processed by a BlockReduction
// kernel, and the data instances those kernels covered. rows_fused and the
// per-worker freeride_worker_rows_total move together; comparing
// block_flushes against robj_updates_total shows the synchronization events
// the fusion removed.
var (
	mBlockFlushes = obs.Default.Counter("freeride_block_flushes_total",
		"worker-local dense block buffers flushed into the shared reduction object (one per split on the fused path)")
	mRowsFused = obs.Default.Counter("freeride_rows_fused_total",
		"data instances processed by split-granular BlockReduction kernels")
)

// BlockArgs is the split-granular counterpart of ReductionArgs: one split of
// the input plus a worker-local dense accumulation buffer mirroring the
// reduction object's cells. The kernel accumulates into the buffer — via
// Accumulate for the generic form or directly through Acc() for specialized
// kernels — and the engine flushes it into the shared object after the
// kernel returns, then resets it to the operator's identity for the next
// split.
type BlockArgs struct {
	// Data holds the split's rows, row-major; len == NumRows*Cols.
	Data []float64
	// NumRows is the number of data instances in this split.
	NumRows int
	// Cols is the number of features per instance.
	Cols int
	// Begin is the global index of the split's first row.
	Begin int

	worker        int
	op            robj.Op
	groups, elems int
	acc           []float64
	scratch       [][]float64
}

// Row returns instance i of the split.
func (a *BlockArgs) Row(i int) []float64 {
	return a.Data[i*a.Cols : (i+1)*a.Cols]
}

// Worker reports the id of the worker thread processing this split.
func (a *BlockArgs) Worker() int { return a.worker }

// Groups reports the reduction object's group count.
func (a *BlockArgs) Groups() int { return a.groups }

// Elems reports the reduction object's elements per group.
func (a *BlockArgs) Elems() int { return a.elems }

// Acc returns the worker-local accumulation buffer: Groups()×Elems() cells,
// group-major, identity-valued on entry to the kernel. Specialized kernels
// update it directly (acc[group*Elems()+elem]) to skip Accumulate's bounds
// check and operator dispatch.
func (a *BlockArgs) Acc() []float64 { return a.acc }

// Accumulate folds v into local cell (group, elem) under the object's
// operator. Unlike ReductionArgs.Accumulate it touches only the worker-local
// buffer — no lock, no CAS — and the engine synchronizes once per split at
// flush time.
func (a *BlockArgs) Accumulate(group, elem int, v float64) {
	if group < 0 || group >= a.groups || elem < 0 || elem >= a.elems {
		panic("freeride: BlockArgs.Accumulate out of range")
	}
	i := group*a.elems + elem
	a.acc[i] = a.op.Apply(a.acc[i], v)
}

// Scratch returns per-worker scratch buffer id of length n, reused across
// calls; same contract as ReductionArgs.Scratch.
func (a *BlockArgs) Scratch(id, n int) []float64 {
	for id >= len(a.scratch) {
		a.scratch = append(a.scratch, nil)
	}
	if cap(a.scratch[id]) < n {
		a.scratch[id] = make([]float64, n)
	}
	return a.scratch[id][:n]
}

func fillIdentity(s []float64, id float64) {
	for i := range s {
		s[i] = id
	}
}
