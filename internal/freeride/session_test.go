package freeride

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// TestRunEmptySourceIdentity: a source with zero rows yields a merged
// reduction object holding the operator's identity in every cell, for every
// operator, without ever calling the reduction function.
func TestRunEmptySourceIdentity(t *testing.T) {
	empty := dataset.NewMemorySource(dataset.NewMatrix(0, 3))
	for _, op := range []robj.Op{robj.OpAdd, robj.OpMin, robj.OpMax} {
		eng := New(Config{Threads: 2, SplitRows: 16})
		spec := Spec{
			Object: ObjectSpec{Groups: 2, Elems: 2, Op: op},
			Reduction: func(a *ReductionArgs) error {
				t.Error("reduction called on empty source")
				return nil
			},
		}
		res, err := eng.Run(spec, empty)
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		want := op.Identity()
		for g := 0; g < 2; g++ {
			for e := 0; e < 2; e++ {
				if got := res.Object.Get(g, e); got != want && !(math.IsInf(want, 0) && got == want) {
					t.Fatalf("op %v cell (%d,%d) = %v, want identity %v", op, g, e, got, want)
				}
			}
		}
		if res.Stats.Splits != 0 {
			t.Fatalf("op %v: %d splits on empty source", op, res.Stats.Splits)
		}
		eng.Close()
	}
}

// TestRunEmptySourceLocalState: LocalInit-only specs on an empty source
// merge the per-worker initial locals without running the reduction.
func TestRunEmptySourceLocalState(t *testing.T) {
	eng := New(Config{Threads: 3, SplitRows: 16})
	defer eng.Close()
	spec := Spec{
		LocalInit:    func() any { return 1 },
		LocalCombine: func(a, b any) any { return a.(int) + b.(int) },
		Reduction:    func(a *ReductionArgs) error { return errors.New("must not run") },
	}
	res, err := eng.Run(spec, dataset.NewMemorySource(dataset.NewMatrix(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Local.(int) != 3 {
		t.Fatalf("merged local = %v, want 3 (one per worker slot)", res.Local)
	}
}

// TestClosedEngineRejectsWork: after Close, Start and Run return
// ErrEngineClosed; Close stays idempotent.
func TestClosedEngineRejectsWork(t *testing.T) {
	m := dataset.UniformMatrix(100, 1, 1, 0, 1)
	eng := New(Config{Threads: 2, SplitRows: 10})
	if _, err := eng.Run(sumSpec(), dataset.NewMemorySource(m)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := eng.Start(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Start after Close = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.Run(sumSpec(), dataset.NewMemorySource(m)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Run after Close = %v, want ErrEngineClosed", err)
	}
}

// TestReleasePoolsObject: a released result's object is reused by the next
// same-shaped Run instead of allocating, and res.Object is nilled so stale
// access fails fast.
func TestReleasePoolsObject(t *testing.T) {
	m := dataset.UniformMatrix(500, 1, 2, 0, 1)
	src := dataset.NewMemorySource(m)
	eng := New(Config{Threads: 2, SplitRows: 50})
	defer eng.Close()
	res1, err := eng.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	first := res1.Object
	want := first.Get(0, 0)
	if err := eng.Release(res1); err != nil {
		t.Fatal(err)
	}
	if res1.Object != nil {
		t.Fatal("Release left res.Object set")
	}
	res2, err := eng.Run(sumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Object != first {
		t.Fatal("second Run did not reuse the released object")
	}
	if got := res2.Object.Get(0, 0); got != want {
		t.Fatalf("pooled rerun sum = %v, want %v", got, want)
	}
	// Releasing a nil result or an object-less result is a no-op.
	if err := eng.Release(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Release(&Result{}); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseWrongEngine: pooled objects are session-scoped — releasing a
// result to an engine with a different strategy/thread shape is rejected
// with an error that says so.
func TestReleaseWrongEngine(t *testing.T) {
	m := dataset.UniformMatrix(100, 1, 3, 0, 1)
	a := New(Config{Threads: 2, SplitRows: 10})
	defer a.Close()
	b := New(Config{Threads: 3, SplitRows: 10})
	defer b.Close()
	res, err := a.Run(sumSpec(), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	err = b.Release(res)
	if err == nil {
		t.Fatal("cross-engine Release succeeded")
	}
	if !strings.Contains(err.Error(), "session-scoped") {
		t.Fatalf("error %q does not explain session scoping", err)
	}
	if res.Object == nil {
		t.Fatal("failed Release must not consume the object")
	}
	if err := a.Release(res); err != nil {
		t.Fatal(err)
	}
}

// TestRunIntoMismatchNamesPool: the workers/strategy mismatch error points
// at the session pool (Run + Release) as the remedy.
func TestRunIntoMismatchNamesPool(t *testing.T) {
	m := dataset.UniformMatrix(100, 1, 4, 0, 1)
	a := New(Config{Threads: 2, SplitRows: 10})
	defer a.Close()
	b := New(Config{Threads: 3, SplitRows: 10})
	defer b.Close()
	res, err := a.Run(sumSpec(), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.RunInto(sumSpec(), dataset.NewMemorySource(m), res.Object)
	if err == nil {
		t.Fatal("cross-engine RunInto succeeded")
	}
	for _, want := range []string{"workers", "Release"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

// TestPropertySessionMatchesOneShot: across schedulers, strategies, and
// thread counts, a pass on a warm session (pooled scheduler, split table,
// and reduction object) is bit-identical to a fresh one-shot engine run of
// the same spec — integer-valued data makes float addition exact, so the
// comparison is ==, not within-epsilon.
func TestPropertySessionMatchesOneShot(t *testing.T) {
	policies := []sched.Policy{sched.Static, sched.Dynamic, sched.Guided, sched.WorkStealing}
	strategies := []robj.Strategy{
		robj.FullReplication, robj.FullLocking, robj.OptimizedFullLocking,
		robj.FixedLocking, robj.AtomicCAS,
	}
	histSpec := func(groups int) Spec {
		return Spec{
			Object: ObjectSpec{Groups: groups, Elems: 2, Op: robj.OpAdd},
			Reduction: func(a *ReductionArgs) error {
				for i := 0; i < a.NumRows; i++ {
					row := a.Row(i)
					g := int(row[0]) % groups
					if g < 0 {
						g += groups
					}
					a.Accumulate(g, 0, 1)
					a.Accumulate(g, 1, row[1])
				}
				return nil
			},
		}
	}
	prop := func(seed int64, pick uint8, threadsRaw uint8, rowsRaw uint16) bool {
		threads := 1 + int(threadsRaw)%4
		rows := 16 + int(rowsRaw)%400
		policy := policies[int(pick)%len(policies)]
		strategy := strategies[int(pick/8)%len(strategies)]
		const groups = 5
		m := dataset.NewMatrix(rows, 2)
		r := seed
		for i := range m.Data {
			r = r*6364136223846793005 + 1442695040888963407
			m.Data[i] = float64((r >> 33) % 100)
		}
		src := dataset.NewMemorySource(m)
		cfg := Config{Threads: threads, SplitRows: 1 + rows/7, Scheduler: policy, Strategy: strategy}
		spec := histSpec(groups)

		session := New(cfg)
		defer session.Close()
		// Two warm-up passes populate the session pools, then the measured
		// pass runs entirely on reused state.
		for i := 0; i < 2; i++ {
			res, err := session.Run(spec, src)
			if err != nil {
				t.Log(err)
				return false
			}
			if err := session.Release(res); err != nil {
				t.Log(err)
				return false
			}
		}
		warm, err := session.Run(spec, src)
		if err != nil {
			t.Log(err)
			return false
		}
		defer session.Release(warm)

		oneShot := New(cfg)
		defer oneShot.Close()
		fresh, err := oneShot.Run(spec, src)
		if err != nil {
			t.Log(err)
			return false
		}
		a, b := warm.Object.Snapshot(), fresh.Object.Snapshot()
		for i := range a {
			if a[i] != b[i] {
				t.Logf("cell %d: session %v != one-shot %v (policy %v, strategy %v, threads %d)",
					i, a[i], b[i], policy, strategy, threads)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentJobsOnOnePool: independent jobs with different object
// shapes run concurrently on one session's worker pool and each produces
// its own correct result. CI runs this under -race.
func TestConcurrentJobsOnOnePool(t *testing.T) {
	eng := New(Config{Threads: 4, SplitRows: 64})
	defer eng.Close()
	m := dataset.UniformMatrix(4000, 2, 9, 0, 1)
	src := dataset.NewMemorySource(m)
	want := seqSum(m)

	const jobs = 8
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for pass := 0; pass < 5; pass++ {
				if j%2 == 0 {
					res, err := eng.Run(sumSpec(), src)
					if err != nil {
						errs[j] = err
						return
					}
					if got := res.Object.Get(0, 0); math.Abs(got-want) > 1e-6 {
						errs[j] = errors.New("sum job diverged")
						return
					}
					errs[j] = eng.Release(res)
				} else {
					spec := Spec{
						Object: ObjectSpec{Groups: 4, Elems: 1, Op: robj.OpAdd},
						Reduction: func(a *ReductionArgs) error {
							for i := 0; i < a.NumRows; i++ {
								a.Accumulate((a.Begin+i)%4, 0, 1)
							}
							return nil
						},
					}
					res, err := eng.Run(spec, src)
					if err != nil {
						errs[j] = err
						return
					}
					var rows float64
					for g := 0; g < 4; g++ {
						rows += res.Object.Get(g, 0)
					}
					if rows != float64(m.Rows) {
						errs[j] = errors.New("count job diverged")
						return
					}
					errs[j] = eng.Release(res)
				}
				if errs[j] != nil {
					return
				}
			}
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
}

// TestCancelOneJobLeavesOthers: cancelling one in-flight job must not
// disturb a concurrent job on the same pool — the other job completes with
// the correct result.
func TestCancelOneJobLeavesOthers(t *testing.T) {
	eng := New(Config{Threads: 4, SplitRows: 32})
	defer eng.Close()
	m := dataset.UniformMatrix(2000, 1, 11, 0, 1)
	src := dataset.NewMemorySource(m)
	want := seqSum(m)

	ctx, cancel := context.WithCancel(context.Background())
	blockedErr := make(chan error, 1)
	go func() {
		_, err := eng.RunContext(ctx, sumSpec(), &blockedSource{rows: 100, cols: 1})
		blockedErr <- err
	}()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()

	// The healthy job keeps running passes while the blocked one is
	// cancelled out from under it.
	for pass := 0; pass < 10; pass++ {
		res, err := eng.Run(sumSpec(), src)
		if err != nil {
			t.Fatalf("healthy job pass %d: %v", pass, err)
		}
		if got := res.Object.Get(0, 0); math.Abs(got-want) > 1e-6 {
			t.Fatalf("healthy job pass %d: sum %v, want %v", pass, got, want)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-blockedErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked job returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled job did not return")
	}
}
