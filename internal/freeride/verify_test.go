package freeride

import (
	"errors"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/verify"
)

// TestSpecVerify pins the diagnostic each illegal spec shape produces — the
// same pass that gates Engine.Run before any worker starts.
func TestSpecVerify(t *testing.T) {
	reduce := func(args *ReductionArgs) error { return nil }
	blockReduce := func(args *BlockArgs) error { return nil }
	obj := ObjectSpec{Groups: 2, Elems: 3, Op: robj.OpAdd}

	cases := []struct {
		name string
		spec Spec
		code verify.Code
	}{
		{"no reduction", Spec{Object: obj}, verify.CodeNoReduction},
		{"LocalInit without LocalCombine",
			Spec{Object: obj, Reduction: reduce, LocalInit: func() any { return 0 }},
			verify.CodeLocalInitNoCombine},
		{"negative object shape",
			Spec{Object: ObjectSpec{Groups: -1, Elems: 3, Op: robj.OpAdd}, Reduction: reduce},
			verify.CodeBadObjectShape},
		{"BlockReduction without object",
			Spec{BlockReduction: blockReduce},
			verify.CodeBlockNeedsObject},
		{"BlockReduction with LocalInit",
			Spec{Object: obj, BlockReduction: blockReduce, Reduction: reduce,
				LocalInit:    func() any { return 0 },
				LocalCombine: func(dst, src any) any { return dst }},
			verify.CodeBlockLocalInit},
		{"Combine without object",
			Spec{Reduction: reduce,
				LocalInit:    func() any { return 0 },
				LocalCombine: func(dst, src any) any { return dst },
				Combine:      func(o *robj.Object) error { return nil }},
			verify.CodeCombineNeedsObject},
		{"no state at all", Spec{Reduction: reduce}, verify.CodeNoState},
	}

	eng := New(Config{Threads: 1})
	defer eng.Close()
	src := dataset.NewMemorySource(dataset.NewMatrix(4, 2))

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := tc.spec.Verify()
			found := false
			for _, d := range ds {
				if d.Code == tc.code && d.Severity == verify.SeverityError {
					found = true
				}
			}
			if !found {
				t.Fatalf("Spec.Verify: no %s error; got %v", tc.code, ds)
			}
			// The engine must reject the same spec before running anything.
			if _, err := eng.Run(tc.spec, src); err == nil {
				t.Fatal("Engine.Run accepted a spec Verify rejects")
			}
		})
	}
}

// TestRunKeepsErrNoReductionSentinel: callers select on ErrNoReduction with
// errors.Is, so the sentinel must survive the verifier refactor.
func TestRunKeepsErrNoReductionSentinel(t *testing.T) {
	eng := New(Config{Threads: 1})
	defer eng.Close()
	_, err := eng.Run(Spec{Object: ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd}},
		dataset.NewMemorySource(dataset.NewMatrix(2, 2)))
	if !errors.Is(err, ErrNoReduction) {
		t.Fatalf("want ErrNoReduction, got %v", err)
	}
}

// TestSpecVerifyClean: every legal shape the engine supports verifies with
// zero diagnostics.
func TestSpecVerifyClean(t *testing.T) {
	reduce := func(args *ReductionArgs) error { return nil }
	obj := ObjectSpec{Groups: 2, Elems: 3, Op: robj.OpAdd}
	for name, spec := range map[string]Spec{
		"object only": {Object: obj, Reduction: reduce},
		"fused":       {Object: obj, BlockReduction: func(args *BlockArgs) error { return nil }},
		"local state only": {Reduction: reduce,
			LocalInit:    func() any { return 0 },
			LocalCombine: func(dst, src any) any { return dst }},
	} {
		if ds := spec.Verify(); len(ds) != 0 {
			t.Errorf("%s: unexpected diagnostics %v", name, ds)
		}
	}
}
