//go:build !race

package freeride

import (
	"path/filepath"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// TestSessionSteadyStateAllocs is the allocation-regression guard for the
// session architecture (run explicitly in CI): once a session is warm, a
// Run+Release pass reuses the pooled reduction object, scheduler, split
// table, and per-worker buffers, so steady-state allocations are a small
// per-pass constant (observability spans, the Result) — independent of the
// split count. The raceless build is required because -race instrumentation
// inflates allocation counts.
func TestSessionSteadyStateAllocs(t *testing.T) {
	m := dataset.UniformMatrix(64_000, 2, 5, 0, 1)
	src := dataset.NewMemorySource(m)
	spec := Spec{
		Object: ObjectSpec{Groups: 8, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				a.Accumulate(int(row[0]*8)%8, 0, 1)
				a.Accumulate(int(row[0]*8)%8, 1, row[1])
			}
			return nil
		},
	}
	// SplitRows 64 ⇒ 1000 splits: a per-split allocation would show up as
	// ≥1000 allocs/pass, three orders of magnitude over the budget.
	eng := New(Config{Threads: 4, SplitRows: 64, Scheduler: sched.Dynamic})
	defer eng.Close()
	for i := 0; i < 3; i++ { // warm the session pools
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state session pass: %.1f allocs", allocs)
	// The fixed per-pass cost (trace spans, stats, Result) is ~30 allocs
	// today; 150 leaves headroom without letting O(splits) regressions in.
	if allocs > 150 {
		t.Fatalf("steady-state session pass allocated %.0f times (budget 150) — "+
			"a pooled resource (object, scheduler, splits, worker buffers) is being reallocated per pass", allocs)
	}
}

// TestFusedPassAllocs is the allocation-regression guard for the fused
// (BlockReduction) path: the worker-local dense accumulation buffer lives in
// the pool worker's persistent state, so a warm fused pass costs the same
// small per-pass constant as the per-element path — a per-split make of the
// block buffer (1000 splits here) would blow the budget three orders of
// magnitude.
func TestFusedPassAllocs(t *testing.T) {
	m := dataset.UniformMatrix(64_000, 2, 5, 0, 1)
	src := dataset.NewMemorySource(m)
	spec := Spec{
		Object: ObjectSpec{Groups: 8, Elems: 2, Op: robj.OpAdd},
		BlockReduction: func(a *BlockArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				a.Accumulate(int(row[0]*8)%8, 0, 1)
				a.Accumulate(int(row[0]*8)%8, 1, row[1])
			}
			return nil
		},
	}
	eng := New(Config{Threads: 4, SplitRows: 64, Scheduler: sched.Dynamic})
	defer eng.Close()
	for i := 0; i < 3; i++ { // warm the session pools and worker block buffers
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state fused pass: %.1f allocs", allocs)
	if allocs > 150 {
		t.Fatalf("steady-state fused pass allocated %.0f times (budget 150) — "+
			"the block buffer (or another pooled resource) is being reallocated per split or per pass", allocs)
	}
}

// TestSparseFusedPassAllocs is the allocation-regression guard for the
// sparse fused path: the hashed touched-cell accumulator lives in the pool
// worker's persistent state and its capacity tracks the high-water touched
// count, so a warm sparse pass costs the same small per-pass constant — a
// per-split hash (or table) allocation over 1000 splits would blow the
// budget three orders of magnitude.
func TestSparseFusedPassAllocs(t *testing.T) {
	m := dataset.NewMatrix(64_000, 2)
	const groups = 8192 // past the default SparseAccCells threshold
	r := int64(17)
	for i := 0; i < 64_000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		m.Data[2*i] = float64(uint64(r) >> 33 % groups)
		m.Data[2*i+1] = 1
	}
	src := dataset.NewMemorySource(m)
	spec := Spec{
		Object:       ObjectSpec{Groups: groups, Elems: 1, Op: robj.OpAdd},
		ScatterBlock: true,
		BlockReduction: func(a *BlockArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				a.Accumulate(int(row[0]), 0, row[1])
			}
			return nil
		},
	}
	eng := New(Config{Threads: 4, SplitRows: 64, Scheduler: sched.Dynamic})
	defer eng.Close()
	for i := 0; i < 3; i++ { // warm the session pools and worker hash maps
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state sparse fused pass: %.1f allocs", allocs)
	if allocs > 150 {
		t.Fatalf("steady-state sparse fused pass allocated %.0f times (budget 150) — "+
			"the hashed accumulator (or another pooled resource) is being reallocated per split or per pass", allocs)
	}
}

// TestZeroCopyPassAllocs is the allocation-regression guard for mmap-backed
// zero-copy ingestion: with a mapped row-major file the engine's reads are
// sub-slices of the mapping (no split buffer fills at all), so a warm fused
// pass over the file costs the same small per-pass constant as a memory
// source — any copy or per-split buffer sneaking back into the file path
// shows up as O(splits) allocations.
func TestZeroCopyPassAllocs(t *testing.T) {
	m := dataset.UniformMatrix(64_000, 2, 5, 0, 1)
	path := filepath.Join(t.TempDir(), "zc.frds")
	if err := dataset.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	src, err := dataset.OpenMappedSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if !src.Mapped() {
		t.Skip("mmap unavailable on this platform/filesystem")
	}
	spec := Spec{
		Object: ObjectSpec{Groups: 8, Elems: 2, Op: robj.OpAdd},
		BlockReduction: func(a *BlockArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				a.Accumulate(int(row[0]*8)%8, 0, 1)
				a.Accumulate(int(row[0]*8)%8, 1, row[1])
			}
			return nil
		},
	}
	eng := New(Config{Threads: 4, SplitRows: 64, Scheduler: sched.Dynamic})
	defer eng.Close()
	for i := 0; i < 3; i++ { // warm the session pools
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Release(res); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state zero-copy mapped pass: %.1f allocs", allocs)
	if allocs > 150 {
		t.Fatalf("steady-state zero-copy pass allocated %.0f times (budget 150) — "+
			"the mapped fast path is copying or allocating per split", allocs)
	}
}
