package freeride

import (
	"context"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
)

// JobHandle is an asynchronously submitted engine pass: Submit returns
// immediately and the pass runs on the session's worker pool in the
// background. A handle is the engine-level primitive the serving frontend
// (internal/serve) builds job polling on — submit, hand back an id, collect
// the result later — without holding a goroutine per caller inside the
// engine itself.
type JobHandle struct {
	job  obs.JobID
	done chan struct{}
	res  *Result
	err  error
}

// Job reports the pass's job id, valid immediately after Submit — the
// polling key that also attributes the run's trace and counter deltas.
func (h *JobHandle) Job() obs.JobID { return h.job }

// Done returns a channel closed when the pass finishes (select-friendly).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the pass finishes and returns its outcome, with
// RunContext's semantics (first error wins, cancellation via the submit
// context). Wait may be called from any number of goroutines; all observe
// the same result. The caller owns the Result and should hand its object
// back with Engine.Release when finished.
func (h *JobHandle) Wait() (*Result, error) {
	<-h.done
	return h.res, h.err
}

// TryResult returns the outcome without blocking; ok is false while the
// pass is still running.
func (h *JobHandle) TryResult() (res *Result, err error, ok bool) {
	select {
	case <-h.done:
		return h.res, h.err, true
	default:
		return nil, nil, false
	}
}

// Submit starts one reduction pass asynchronously on the engine session and
// returns a handle for it. The pass runs under a freshly minted job id
// (available from the handle immediately), observes ctx exactly as
// RunContext does, and publishes its Result through Wait/TryResult. Submit
// never blocks on the pass itself.
func (e *Engine) Submit(ctx context.Context, spec Spec, src dataset.Source) *JobHandle {
	h := &JobHandle{job: obs.NextJobID(), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.res, h.err = e.run(ctx, spec, src, nil, h.job)
	}()
	return h
}
