package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	m := UniformMatrix(17, 4, 5, -100, 100)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, []string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("csv round trip mismatch")
	}
	// Without header.
	buf.Reset()
	if err := WriteCSV(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCSV(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("headerless round trip mismatch")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"header only": "a,b\n",
		"non-numeric": "1,2\n3,oops\n",
		"ragged":      "1,2\n3\n",
	}
	for name, src := range cases {
		skip := name == "header only"
		if _, err := ReadCSV(strings.NewReader(src), skip); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Header length mismatch on write.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, NewMatrix(1, 2), []string{"only-one"}); err == nil {
		t.Error("short header: want error")
	}
}

func TestCSVParsesPlainFile(t *testing.T) {
	src := "x,y,label\n1.5,2,0\n-3,4e2,1\n"
	m, err := ReadCSV(strings.NewReader(src), true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 || m.At(1, 1) != 400 || m.At(0, 0) != 1.5 {
		t.Fatalf("parsed %v", m.Data)
	}
}
