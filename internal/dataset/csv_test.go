package dataset

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	m := UniformMatrix(17, 4, 5, -100, 100)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, []string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("csv round trip mismatch")
	}
	// Without header.
	buf.Reset()
	if err := WriteCSV(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCSV(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("headerless round trip mismatch")
	}
}

func TestCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"header only": "a,b\n",
		"non-numeric": "1,2\n3,oops\n",
		"ragged":      "1,2\n3\n",
	}
	for name, src := range cases {
		skip := name == "header only"
		if _, err := ReadCSV(strings.NewReader(src), skip); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Header length mismatch on write.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, NewMatrix(1, 2), []string{"only-one"}); err == nil {
		t.Error("short header: want error")
	}
}

func TestCSVParsesPlainFile(t *testing.T) {
	src := "x,y,label\n1.5,2,0\n-3,4e2,1\n"
	m, err := ReadCSV(strings.NewReader(src), true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 || m.At(1, 1) != 400 || m.At(0, 0) != 1.5 {
		t.Fatalf("parsed %v", m.Data)
	}
	// CRLF line endings and interior blank lines parse like encoding/csv.
	m, err = ReadCSV(strings.NewReader("1,2\r\n\r\n3,4\r\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.At(1, 0) != 3 {
		t.Fatalf("crlf parse: %v", m.Data)
	}
}

func writeTestCSV(t *testing.T, m *Matrix, header []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(f, m, header); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCSVFileSource(t *testing.T) {
	m := UniformMatrix(333, 5, 9, -50, 50)
	for _, header := range [][]string{nil, {"a", "b", "c", "d", "e"}} {
		path := writeTestCSV(t, m, header)
		src, err := OpenCSVFileSource(path, header != nil)
		if err != nil {
			t.Fatal(err)
		}
		if src.NumRows() != 333 || src.Cols() != 5 {
			t.Fatalf("shape %dx%d", src.NumRows(), src.Cols())
		}
		for _, r := range [][2]int{{0, 333}, {7, 100}, {332, 333}, {50, 50}} {
			dst := make([]float64, (r[1]-r[0])*5)
			if err := src.ReadRows(r[0], r[1], dst); err != nil {
				t.Fatal(err)
			}
			for i := range dst {
				if dst[i] != m.Data[r[0]*5+i] {
					t.Fatalf("range %v mismatch at %d: %v vs %v", r, i, dst[i], m.Data[r[0]*5+i])
				}
			}
		}
		if err := src.ReadRows(-1, 2, make([]float64, 15)); err == nil {
			t.Fatal("negative begin: want error")
		}
		if err := src.ReadRows(0, 334, make([]float64, 334*5)); err == nil {
			t.Fatal("end beyond rows: want error")
		}
		if err := src.ReadRows(0, 2, make([]float64, 3)); err == nil {
			t.Fatal("short dst: want error")
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Ragged and empty files are rejected at open.
	dir := t.TempDir()
	ragged := filepath.Join(dir, "r.csv")
	if err := os.WriteFile(ragged, []byte("1,2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCSVFileSource(ragged, false); err == nil {
		t.Fatal("ragged csv: want error at open")
	}
	empty := filepath.Join(dir, "e.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCSVFileSource(empty, false); err == nil {
		t.Fatal("empty csv: want error at open")
	}
}

func TestCSVFileSourceConcurrent(t *testing.T) {
	m := UniformMatrix(1024, 3, 13, 0, 1)
	src, err := OpenCSVFileSource(writeTestCSV(t, m, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, 128*3)
			for lo := w * 11 % 896; lo < 896; lo += 64 {
				if err := src.ReadRows(lo, lo+128, dst); err != nil {
					errs[w] = err
					return
				}
				for i := range dst {
					if dst[i] != m.Data[lo*3+i] {
						errs[w] = fmt.Errorf("worker %d: mismatch at row %d", w, lo)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Allocs-per-row guard: the pooled line buffer and field scratch must make
// steady-state CSV reads allocation-free per row. This pins the satellite
// fix — the old path allocated a string per field.
func TestCSVReadRowsAllocsPerRow(t *testing.T) {
	const rows, cols, chunk = 2048, 6, 256
	m := UniformMatrix(rows, cols, 17, -10, 10)
	src, err := OpenCSVFileSource(writeTestCSV(t, m, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst := make([]float64, chunk*cols)
	// Warm the pool so the measured passes see steady state.
	if err := src.ReadRows(0, chunk, dst); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		for lo := 0; lo+chunk <= rows; lo += chunk {
			if err := src.ReadRows(lo, lo+chunk, dst); err != nil {
				t.Fatal(err)
			}
		}
	})
	perRow := avg / rows
	if perRow > 0.01 {
		t.Fatalf("csv reads allocate %.4f objects/row (%.1f per full pass), want ~0", perRow, avg)
	}
}
