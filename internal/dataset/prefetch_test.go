package dataset

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestPrefetchMatchesUnderlying(t *testing.T) {
	m := UniformMatrix(1000, 3, 1, 0, 1)
	p := NewPrefetchSource(NewMemorySource(m), 64, 4)
	if p.NumRows() != 1000 || p.Cols() != 3 {
		t.Fatal("shape")
	}
	dst := make([]float64, 3000)
	// Sequential scan in odd-sized chunks crossing block boundaries.
	for lo := 0; lo < 1000; lo += 37 {
		hi := lo + 37
		if hi > 1000 {
			hi = 1000
		}
		buf := dst[:(hi-lo)*3]
		if err := p.ReadRows(lo, hi, buf); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			if buf[i] != m.Data[lo*3+i] {
				t.Fatalf("mismatch at row %d", lo)
			}
		}
	}
	hits, misses, prefetches := p.Stats()
	if misses == 0 || prefetches == 0 {
		t.Fatalf("expected misses and prefetches, got h=%d m=%d p=%d", hits, misses, prefetches)
	}
	if hits == 0 {
		t.Fatal("sequential scan should hit prefetched blocks")
	}
}

func TestPrefetchFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.frds")
	m := UniformMatrix(512, 4, 2, -1, 1)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p := NewPrefetchSource(fs, 100, 3)
	dst := make([]float64, 512*4)
	if err := p.ReadRows(0, 512, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != m.Data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestPrefetchConcurrentReaders(t *testing.T) {
	m := UniformMatrix(2048, 2, 3, 0, 1)
	p := NewPrefetchSource(NewMemorySource(m), 128, 6)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			dst := make([]float64, 2048*2)
			for trial := 0; trial < 50; trial++ {
				lo := rng.Intn(2048)
				hi := lo + rng.Intn(2048-lo)
				buf := dst[:(hi-lo)*2]
				if err := p.ReadRows(lo, hi, buf); err != nil {
					errs[w] = err
					return
				}
				for i := range buf {
					if buf[i] != m.Data[lo*2+i] {
						errs[w] = errors.New("data mismatch")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrefetchEviction(t *testing.T) {
	m := UniformMatrix(1000, 1, 4, 0, 1)
	// Tiny cache: 2 blocks of 100 rows.
	p := NewPrefetchSource(NewMemorySource(m), 100, 2)
	dst := make([]float64, 100)
	// Touch many blocks; cache must stay bounded and reads stay correct.
	for pass := 0; pass < 3; pass++ {
		for lo := 0; lo < 1000; lo += 100 {
			if err := p.ReadRows(lo, lo+100, dst); err != nil {
				t.Fatal(err)
			}
			if dst[0] != m.Data[lo] {
				t.Fatal("wrong block content")
			}
		}
	}
	p.mu.Lock()
	resident := len(p.blocks)
	p.mu.Unlock()
	if resident > 2 {
		t.Fatalf("cache holds %d blocks, max 2", resident)
	}
}

func TestPrefetchErrors(t *testing.T) {
	m := UniformMatrix(10, 2, 5, 0, 1)
	p := NewPrefetchSource(NewMemorySource(m), 4, 2)
	dst := make([]float64, 20)
	if err := p.ReadRows(-1, 2, dst); err == nil {
		t.Fatal("negative begin: want error")
	}
	if err := p.ReadRows(0, 11, dst); err == nil {
		t.Fatal("end beyond rows: want error")
	}
	if err := p.ReadRows(0, 10, make([]float64, 3)); err == nil {
		t.Fatal("short dst: want error")
	}
	// Defaults applied for degenerate parameters.
	q := NewPrefetchSource(NewMemorySource(m), 0, 0)
	if q.blockRows != 4096 || q.max != 8 {
		t.Fatalf("defaults: %d %d", q.blockRows, q.max)
	}
}

// Property: prefetch reads equal direct reads for arbitrary ranges, block
// sizes, and cache sizes.
func TestPropertyPrefetchEquivalence(t *testing.T) {
	m := UniformMatrix(300, 2, 7, 0, 1)
	f := func(a, b uint16, blockRaw, cacheRaw uint8) bool {
		lo, hi := int(a)%301, int(b)%301
		if lo > hi {
			lo, hi = hi, lo
		}
		p := NewPrefetchSource(NewMemorySource(m), int(blockRaw%64)+1, int(cacheRaw%6)+2)
		dst := make([]float64, (hi-lo)*2)
		if err := p.ReadRows(lo, hi, dst); err != nil {
			return false
		}
		for i := range dst {
			if dst[i] != m.Data[lo*2+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}
