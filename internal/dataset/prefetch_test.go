package dataset

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPrefetchMatchesUnderlying(t *testing.T) {
	m := UniformMatrix(1000, 3, 1, 0, 1)
	p := NewPrefetchSource(NewMemorySource(m), 64, 4)
	if p.NumRows() != 1000 || p.Cols() != 3 {
		t.Fatal("shape")
	}
	dst := make([]float64, 3000)
	// Sequential scan in odd-sized chunks crossing block boundaries.
	for lo := 0; lo < 1000; lo += 37 {
		hi := lo + 37
		if hi > 1000 {
			hi = 1000
		}
		buf := dst[:(hi-lo)*3]
		if err := p.ReadRows(lo, hi, buf); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			if buf[i] != m.Data[lo*3+i] {
				t.Fatalf("mismatch at row %d", lo)
			}
		}
	}
	hits, misses, prefetches := p.Stats()
	if misses == 0 || prefetches == 0 {
		t.Fatalf("expected misses and prefetches, got h=%d m=%d p=%d", hits, misses, prefetches)
	}
	if hits == 0 {
		t.Fatal("sequential scan should hit prefetched blocks")
	}
}

func TestPrefetchFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.frds")
	m := UniformMatrix(512, 4, 2, -1, 1)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p := NewPrefetchSource(fs, 100, 3)
	dst := make([]float64, 512*4)
	if err := p.ReadRows(0, 512, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != m.Data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestPrefetchConcurrentReaders(t *testing.T) {
	m := UniformMatrix(2048, 2, 3, 0, 1)
	p := NewPrefetchSource(NewMemorySource(m), 128, 6)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			dst := make([]float64, 2048*2)
			for trial := 0; trial < 50; trial++ {
				lo := rng.Intn(2048)
				hi := lo + rng.Intn(2048-lo)
				buf := dst[:(hi-lo)*2]
				if err := p.ReadRows(lo, hi, buf); err != nil {
					errs[w] = err
					return
				}
				for i := range buf {
					if buf[i] != m.Data[lo*2+i] {
						errs[w] = errors.New("data mismatch")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrefetchEviction(t *testing.T) {
	m := UniformMatrix(1000, 1, 4, 0, 1)
	// Tiny cache: 2 blocks of 100 rows.
	p := NewPrefetchSource(NewMemorySource(m), 100, 2)
	dst := make([]float64, 100)
	// Touch many blocks; cache must stay bounded and reads stay correct.
	for pass := 0; pass < 3; pass++ {
		for lo := 0; lo < 1000; lo += 100 {
			if err := p.ReadRows(lo, lo+100, dst); err != nil {
				t.Fatal(err)
			}
			if dst[0] != m.Data[lo] {
				t.Fatal("wrong block content")
			}
		}
	}
	p.mu.Lock()
	resident := len(p.blocks)
	p.mu.Unlock()
	if resident > 2 {
		t.Fatalf("cache holds %d blocks, max 2", resident)
	}
}

func TestPrefetchErrors(t *testing.T) {
	m := UniformMatrix(10, 2, 5, 0, 1)
	p := NewPrefetchSource(NewMemorySource(m), 4, 2)
	dst := make([]float64, 20)
	if err := p.ReadRows(-1, 2, dst); err == nil {
		t.Fatal("negative begin: want error")
	}
	if err := p.ReadRows(0, 11, dst); err == nil {
		t.Fatal("end beyond rows: want error")
	}
	if err := p.ReadRows(0, 10, make([]float64, 3)); err == nil {
		t.Fatal("short dst: want error")
	}
	// Defaults applied for degenerate parameters.
	q := NewPrefetchSource(NewMemorySource(m), 0, 0)
	if q.blockRows != 4096 || q.max != 8 {
		t.Fatalf("defaults: %d %d", q.blockRows, q.max)
	}
}

// flakeOnceSource fails the first read starting at failBegin, signalling
// started when that read is in flight and holding it until release closes.
// Every later read of the same range succeeds.
type flakeOnceSource struct {
	Source
	failBegin int
	started   chan struct{}
	release   chan struct{}

	mu       sync.Mutex
	attempts int
}

func (s *flakeOnceSource) ReadRows(begin, end int, dst []float64) error {
	if begin == s.failBegin {
		s.mu.Lock()
		s.attempts++
		first := s.attempts == 1
		s.mu.Unlock()
		if first {
			close(s.started)
			<-s.release
			return errors.New("flaky: first read of block failed")
		}
	}
	return s.Source.ReadRows(begin, end, dst)
}

func TestPrefetchBackgroundFailureFallsThrough(t *testing.T) {
	m := UniformMatrix(200, 2, 11, 0, 1)
	src := &flakeOnceSource{
		Source:    NewMemorySource(m),
		failBegin: 100,
		started:   make(chan struct{}),
		release:   make(chan struct{}),
	}
	p := NewPrefetchSource(src, 100, 4)
	dst := make([]float64, 200)
	// Reading block 0 schedules the background prefetch of block 1, whose
	// first read is rigged to fail.
	if err := p.ReadRows(0, 100, dst); err != nil {
		t.Fatal(err)
	}
	<-src.started
	done := make(chan error, 1)
	go func() { done <- p.ReadRows(100, 200, dst) }()
	time.Sleep(10 * time.Millisecond) // let the reader block on the in-flight fetch
	close(src.release)
	if err := <-done; err != nil {
		t.Fatalf("background-fetch failure must fall through to a direct fetch: %v", err)
	}
	for i := range dst {
		if dst[i] != m.Data[100*2+i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	src.mu.Lock()
	attempts := src.attempts
	src.mu.Unlock()
	if attempts != 2 {
		t.Fatalf("block 1 read attempts = %d, want 2 (failed background + direct)", attempts)
	}
}

func TestPrefetchReadRowsContextCancelled(t *testing.T) {
	m := UniformMatrix(100, 1, 11, 0, 1)
	p := NewPrefetchSource(NewMemorySource(m), 10, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, 100)
	if err := p.ReadRowsContext(ctx, 0, 100, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// gatedCountingSource counts underlying reads per block-begin offset and
// holds every read until release closes, so a test can pile readers onto
// the same cold block and prove only one fetch reaches the source.
type gatedCountingSource struct {
	Source
	release chan struct{}

	mu    sync.Mutex
	reads map[int]int
}

func (s *gatedCountingSource) ReadRows(begin, end int, dst []float64) error {
	s.mu.Lock()
	if s.reads == nil {
		s.reads = map[int]int{}
	}
	s.reads[begin]++
	s.mu.Unlock()
	<-s.release
	return s.Source.ReadRows(begin, end, dst)
}

// Regression test for duplicate in-flight fetches: N readers missing the
// same cold block concurrently must coalesce onto ONE underlying read via
// the per-block latch, not issue N copies of the same I/O.
func TestPrefetchCoalescesConcurrentMisses(t *testing.T) {
	m := UniformMatrix(400, 2, 19, 0, 1)
	src := &gatedCountingSource{
		Source:  NewMemorySource(m),
		release: make(chan struct{}),
	}
	// Depth 1 keeps the read-ahead window small so the counts stay easy to
	// reason about; the latch under test is depth-independent.
	p := NewPrefetchSourceDepth(src, 100, 4, 1)
	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, 100*2)
			errs[w] = p.ReadRows(0, 100, dst)
		}(w)
	}
	// Wait until the first reader's fetch is in flight, then give the rest
	// time to arrive and (correctly) park on the latch rather than fetch.
	for {
		src.mu.Lock()
		n := src.reads[0]
		src.mu.Unlock()
		if n >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(src.release)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	src.mu.Lock()
	block0Reads := src.reads[0]
	src.mu.Unlock()
	if block0Reads != 1 {
		t.Fatalf("block 0 fetched %d times for %d concurrent readers, want 1 (coalesced)", block0Reads, readers)
	}
	st := p.DetailedStats()
	if st.CoalescedWaits == 0 {
		t.Fatal("expected coalesced waits to be counted")
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// A sequential scan with the default double-buffered pipeline must be
// mostly wait-free: read-ahead has to keep running on hits, or the window
// drains and every depth-th block stalls.
func TestPrefetchReadAheadSustainsHits(t *testing.T) {
	m := UniformMatrix(6400, 2, 23, 0, 1)
	// slowSource gives the background fetcher something to overlap with.
	p := NewPrefetchSource(&slowSource{Source: NewMemorySource(m), delay: 200 * time.Microsecond}, 64, 8)
	dst := make([]float64, 64*2)
	for lo := 0; lo < 6400; lo += 64 {
		if err := p.ReadRows(lo, lo+64, dst); err != nil {
			t.Fatal(err)
		}
		// Per-block consumer work lets the pipeline refill.
		time.Sleep(400 * time.Microsecond)
	}
	st := p.DetailedStats()
	total := st.ResidentHits + st.CoalescedWaits + st.Misses
	if total == 0 {
		t.Fatal("no block requests recorded")
	}
	if share := st.HitShare(); share < 0.5 {
		t.Fatalf("sequential hit share %.2f (%+v), want >= 0.5 from sustained read-ahead", share, st)
	}
}

type slowSource struct {
	Source
	delay time.Duration
}

func (s *slowSource) ReadRows(begin, end int, dst []float64) error {
	time.Sleep(s.delay)
	return s.Source.ReadRows(begin, end, dst)
}

// Property: prefetch reads equal direct reads for arbitrary ranges, block
// sizes, and cache sizes.
func TestPropertyPrefetchEquivalence(t *testing.T) {
	m := UniformMatrix(300, 2, 7, 0, 1)
	f := func(a, b uint16, blockRaw, cacheRaw uint8) bool {
		lo, hi := int(a)%301, int(b)%301
		if lo > hi {
			lo, hi = hi, lo
		}
		p := NewPrefetchSource(NewMemorySource(m), int(blockRaw%64)+1, int(cacheRaw%6)+2)
		dst := make([]float64, (hi-lo)*2)
		if err := p.ReadRows(lo, hi, dst); err != nil {
			return false
		}
		for i := range dst {
			if dst[i] != m.Data[lo*2+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}
