//go:build unix && !linux

package dataset

// madviseSequential is a no-op where MADV_SEQUENTIAL is not known to be
// portable; the mapping still works, just without the kernel read-ahead
// hint.
func madviseSequential([]byte) {}
