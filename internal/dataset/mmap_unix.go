//go:build unix

package dataset

import (
	"os"
	"syscall"
)

// mapFile maps the first length bytes of f read-only and shared: the pages
// stay backed by the page cache, so N sources over one file share one
// physical copy.
func mapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapFile mapping.
func unmapFile(b []byte) error { return syscall.Munmap(b) }
