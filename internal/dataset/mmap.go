package dataset

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"chapelfreeride/internal/obs"
)

// Mapped-ingestion counters: how many datasets are served through a live
// memory mapping, how many fell back to positional reads, and how many rows
// the zero-copy mapped fast path has served. mappedBytes is the live mapping
// footprint, exposed as a gauge — the serve cache accounts the same number.
var (
	mMmapOpens = obs.Default.Counter("dataset_mmap_opens_total",
		"dataset files opened through a memory mapping")
	mMmapFallbacks = obs.Default.Counter("dataset_mmap_fallbacks_total",
		"dataset files that fell back from mmap to positional reads")
	mRowsMapped = obs.Default.Counter("dataset_rows_mapped_total",
		"rows served zero-copy as sub-slices of a memory mapping")
	mappedBytes atomic.Int64
)

func init() {
	obs.Default.GaugeFunc("dataset_mmap_bytes",
		"bytes of dataset payload currently memory-mapped",
		func() float64 { return float64(mappedBytes.Load()) })
}

// MappedFile is a binary dataset file opened for zero-copy ingestion. The
// concrete value implements RowSlicer exactly when Mapped() is true and the
// payload is row-major — then every split the engine reads is a sub-slice of
// the mapping, no copy, no parse. Otherwise reads go through the boxed
// ReadRows path (gathering for column-major payloads).
//
// Borrowed-view contract: slices returned by the RowSlicer fast path alias
// the mapping. They are valid only until Close; kernels must treat them as
// read-only and must not retain them past the reduction pass (the engine's
// no-retention contract, checked statically by frds-vet's rowalias
// analyzer). Close unmaps — a retained view would fault.
type MappedFile interface {
	Source
	io.Closer
	// Layout reports the payload layout on disk.
	Layout() Layout
	// Mapped reports whether the payload is served from a live memory
	// mapping (true) or the positional-read fallback (false).
	Mapped() bool
	// MappedBytes is the byte length of the active mapping, 0 on fallback.
	// This is the number a cache should account: mapped pages are shared
	// with the page cache and reclaimable, unlike copied heap rows.
	MappedBytes() int64
}

// mappedBase is the common state behind every OpenMappedSource result.
type mappedBase struct {
	fb   *FileSource // owns the fd; also the positional-read fallback
	m    []byte      // raw mapping; nil in fallback mode
	data []float64   // payload view aliasing m; nil in fallback mode

	closeOnce sync.Once
	closeErr  error
}

// mappedRowMajor adds the RowSlicer fast path; only row-major mapped files
// get this type, so the engine's capability probe never sees a false claim.
type mappedRowMajor struct{ *mappedBase }

// OpenMappedSource opens path (a WriteFile/WriteFileLayout dataset) for
// zero-copy ingestion: the payload is memory-mapped read-only and, for
// row-major files, served to the engine as aliasing sub-slices through
// RowSlicer. When mapping is unavailable (platform, filesystem) the source
// degrades to positional reads with identical results.
func OpenMappedSource(path string) (MappedFile, error) {
	fb, err := OpenFileSource(path)
	if err != nil {
		return nil, err
	}
	base := &mappedBase{fb: fb}
	payload := int64(fb.rows) * int64(fb.cols) * 8
	need := fb.off + payload
	if st, err := fb.f.Stat(); err != nil || st.Size() < need {
		fb.Close()
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: file holds %d bytes, header promises %d", ErrBadFormat, st.Size(), need)
	}
	if payload > 0 {
		if m, err := mapFile(fb.f, int(need)); err == nil {
			base.m = m
			base.data = unsafe.Slice((*float64)(unsafe.Pointer(&m[fb.off])), fb.rows*fb.cols)
			madviseSequential(m)
			mMmapOpens.Inc()
			mappedBytes.Add(int64(len(m)))
		} else {
			mMmapFallbacks.Inc()
		}
	}
	// A collected source unmaps itself: borrowed views never outlive the
	// pass that read them (the no-retention contract), and the engine's job
	// holds the source for the pass's duration, so once the source is
	// unreachable no view can still be live. Close clears the finalizer.
	runtime.SetFinalizer(base, (*mappedBase).Close)
	if base.data != nil && fb.layout == RowMajor {
		return mappedRowMajor{base}, nil
	}
	return base, nil
}

// NumRows implements Source.
func (s *mappedBase) NumRows() int { return s.fb.rows }

// Cols implements Source.
func (s *mappedBase) Cols() int { return s.fb.cols }

// Layout implements MappedFile.
func (s *mappedBase) Layout() Layout { return s.fb.layout }

// Mapped implements MappedFile.
func (s *mappedBase) Mapped() bool { return s.m != nil }

// MappedBytes implements MappedFile.
func (s *mappedBase) MappedBytes() int64 { return int64(len(s.m)) }

// ReadRows implements Source: a straight copy out of the mapping when one is
// live (gathering for column-major payloads), positional reads otherwise.
func (s *mappedBase) ReadRows(begin, end int, dst []float64) error {
	if s.data == nil {
		return s.fb.ReadRows(begin, end, dst)
	}
	if begin < 0 || end > s.fb.rows || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.fb.rows)
	}
	cols := s.fb.cols
	n := (end - begin) * cols
	if len(dst) < n {
		return fmt.Errorf("dataset: ReadRows dst len %d, need %d", len(dst), n)
	}
	if s.fb.layout == ColMajor {
		rows := s.fb.rows
		for j := 0; j < cols; j++ {
			col := s.data[j*rows+begin : j*rows+end]
			for i, v := range col {
				dst[i*cols+j] = v
			}
		}
	} else {
		copy(dst, s.data[begin*cols:end*cols])
	}
	mRowsFile.Add(int64(end - begin))
	mBytesFile.Add(int64(n) * 8)
	return nil
}

// ReadRowsContext implements ContextSource. Mapped reads are memory copies
// (page faults at worst), so one up-front check bounds cancellation latency.
func (s *mappedBase) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.ReadRows(begin, end, dst)
}

// Close unmaps the payload and releases the file. Idempotent; safe to call
// while no pass is running. Any borrowed row view becomes invalid.
func (s *mappedBase) Close() error {
	s.closeOnce.Do(func() {
		runtime.SetFinalizer(s, nil)
		if s.m != nil {
			mappedBytes.Add(-int64(len(s.m)))
			s.closeErr = unmapFile(s.m)
			s.m, s.data = nil, nil
		}
		if err := s.fb.Close(); s.closeErr == nil {
			s.closeErr = err
		}
	})
	return s.closeErr
}

// Rows implements RowSlicer: rows [begin, end) as a sub-slice of the
// mapping. Borrowed-view contract applies (see MappedFile).
func (s mappedRowMajor) Rows(begin, end int) []float64 {
	mRowsMapped.Add(int64(end - begin))
	mRowsSliced.Add(int64(end - begin))
	return s.data[begin*s.fb.cols : end*s.fb.cols]
}
