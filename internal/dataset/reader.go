package dataset

import "context"

// Reader resolves a Source's optional capabilities — the RowSlicer zero-copy
// fast path and the ContextSource cancellation path — once, instead of
// type-asserting on every read. The engine's worker loop, the cluster's node
// sources, and the prefetch layer previously each carried their own copy of
// that type-assertion dance (which is how PR 2's subSource panic happened);
// they now all read through a Reader.
//
// A Reader is a small value; copy it freely. Its methods are safe for
// concurrent use when the underlying source's are.
type Reader struct {
	src    Source
	slicer RowSlicer
	cs     ContextSource
	cols   int
}

// NewReader wraps src, probing its capabilities once.
func NewReader(src Source) Reader {
	r := Reader{src: src, cols: src.Cols()}
	if s, ok := src.(RowSlicer); ok {
		r.slicer = s
	}
	if c, ok := src.(ContextSource); ok {
		r.cs = c
	}
	return r
}

// Source returns the wrapped source.
func (r Reader) Source() Source { return r.src }

// NumRows reports the source's row count.
func (r Reader) NumRows() int { return r.src.NumRows() }

// Cols reports the source's feature count.
func (r Reader) Cols() int { return r.cols }

// Slices reports whether reads are served zero-copy through RowSlicer.
func (r Reader) Slices() bool { return r.slicer != nil }

// Read returns rows [begin, end) row-major: a slice aliasing the source's
// storage when it supports zero-copy, otherwise a copy into *buf, which is
// grown as needed and updated so callers can reuse it across reads. The
// returned slice is valid until the next Read with the same buf.
func (r Reader) Read(ctx context.Context, begin, end int, buf *[]float64) ([]float64, error) {
	if r.slicer != nil {
		return r.slicer.Rows(begin, end), nil
	}
	need := (end - begin) * r.cols
	b := *buf
	if cap(b) < need {
		b = make([]float64, need)
	}
	b = b[:need]
	*buf = b
	if err := r.ReadInto(ctx, begin, end, b); err != nil {
		return nil, err
	}
	return b, nil
}

// ReadInto copies rows [begin, end) into dst (Source.ReadRows semantics)
// honoring ctx: context-aware sources receive it, and for plain sources it
// is checked once before the uninterruptible read, bounding cancellation
// latency by one read.
func (r Reader) ReadInto(ctx context.Context, begin, end int, dst []float64) error {
	if r.cs != nil {
		return r.cs.ReadRowsContext(ctx, begin, end, dst)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.src.ReadRows(begin, end, dst)
}
