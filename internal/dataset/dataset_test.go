package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewMatrixAndAccessors(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	if m.Row(1)[2] != 7.5 {
		t.Fatal("Row aliasing broken")
	}
	if m.SizeBytes() != 96 {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestNewMatrixPanicsOnNegativeShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestCloneAndEqual(t *testing.T) {
	m := UniformMatrix(5, 3, 1, -1, 1)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, 0, 99)
	if m.Equal(c) {
		t.Fatal("clone aliases original")
	}
	if m.Equal(NewMatrix(5, 4)) || m.Equal(NewMatrix(4, 3)) {
		t.Fatal("shape mismatch should not be equal")
	}
	// NaN equality: matrices with NaN in the same slot compare equal.
	a, b := NewMatrix(1, 1), NewMatrix(1, 1)
	a.Set(0, 0, math.NaN())
	b.Set(0, 0, math.NaN())
	if !a.Equal(b) {
		t.Fatal("NaN cells should compare equal")
	}
}

func TestGaussianMixtureDeterministicAndShaped(t *testing.T) {
	p1, c1 := GaussianMixture(1000, 4, 5, 42)
	p2, c2 := GaussianMixture(1000, 4, 5, 42)
	if !p1.Equal(p2) || !c1.Equal(c2) {
		t.Fatal("GaussianMixture not deterministic")
	}
	p3, _ := GaussianMixture(1000, 4, 5, 43)
	if p1.Equal(p3) {
		t.Fatal("different seeds should differ")
	}
	if p1.Rows != 1000 || p1.Cols != 4 || c1.Rows != 5 || c1.Cols != 4 {
		t.Fatal("bad shapes")
	}
	// Points should be near some center (unit variance, spread 10): the mean
	// min-distance should be far below the typical inter-center distance.
	var sum float64
	for r := 0; r < p1.Rows; r++ {
		best := math.Inf(1)
		for c := 0; c < c1.Rows; c++ {
			var d float64
			for j := 0; j < 4; j++ {
				diff := p1.At(r, j) - c1.At(c, j)
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	if mean := sum / float64(p1.Rows); mean > 4 {
		t.Fatalf("mean distance to nearest true center = %v, want clustered data", mean)
	}
}

func TestGaussianMixturePanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GaussianMixture(10, 2, 0, 1)
}

func TestUniformMatrixBoundsAndDeterminism(t *testing.T) {
	m := UniformMatrix(100, 10, 7, 2, 5)
	for _, v := range m.Data {
		if v < 2 || v >= 5 {
			t.Fatalf("value %v out of [2,5)", v)
		}
	}
	if !m.Equal(UniformMatrix(100, 10, 7, 2, 5)) {
		t.Fatal("UniformMatrix not deterministic")
	}
}

func TestKMeansPointsForBytes(t *testing.T) {
	// 12 MB at dim=10: 12*1024*1024 / 80 = 157286 rows.
	if got := KMeansPointsForBytes(12*1024*1024, 10); got != 157286 {
		t.Fatalf("got %d", got)
	}
	if got := KMeansPointsForBytes(1, 10); got != 1 {
		t.Fatalf("minimum should be 1, got %d", got)
	}
}

func TestKMeansPointsForBytesPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KMeansPointsForBytes(100, 0)
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := UniformMatrix(37, 11, 3, -100, 100)
	m.Set(0, 0, math.Inf(1))
	m.Set(1, 1, math.NaN())
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE00000000000000000000"),
		"truncated": append([]byte("FRDS"), 1, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0),
	}
	for name, b := range cases {
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Wrong version.
	m := NewMatrix(1, 1)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 9 // bump version
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("wrong version: want error")
	}
	// Truncated payload.
	buf.Reset()
	if err := Write(&buf, UniformMatrix(4, 4, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	b = buf.Bytes()[:buf.Len()-8]
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("truncated payload: want error")
	}
}

func TestFileRoundTripAndFileSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.frds")
	m := UniformMatrix(64, 5, 11, 0, 1)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("file round trip mismatch")
	}

	src, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.NumRows() != 64 || src.Cols() != 5 {
		t.Fatalf("source shape %dx%d", src.NumRows(), src.Cols())
	}
	// Concurrent disjoint reads must each see the right rows.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			begin, end := w*8, (w+1)*8
			dst := make([]float64, (end-begin)*5)
			if err := src.ReadRows(begin, end, dst); err != nil {
				errs[w] = err
				return
			}
			for i := range dst {
				if dst[i] != m.Data[begin*5+i] {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFileSourceErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFileSource(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("garbage-not-a-dataset-at-all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileSource(bad); err == nil {
		t.Fatal("bad magic: want error")
	}
}

func TestMemorySource(t *testing.T) {
	m := UniformMatrix(10, 3, 5, 0, 1)
	src := NewMemorySource(m)
	if src.NumRows() != 10 || src.Cols() != 3 {
		t.Fatal("shape")
	}
	dst := make([]float64, 6)
	if err := src.ReadRows(4, 6, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != m.Data[12+i] {
			t.Fatal("wrong rows read")
		}
	}
	if err := src.ReadRows(-1, 2, dst); err == nil {
		t.Fatal("negative begin: want error")
	}
	if err := src.ReadRows(8, 11, dst); err == nil {
		t.Fatal("end beyond rows: want error")
	}
	if err := src.ReadRows(0, 5, make([]float64, 3)); err == nil {
		t.Fatal("short dst: want error")
	}
	// RowSlicer fast path aliases storage.
	rows := src.Rows(2, 4)
	if &rows[0] != &m.Data[6] {
		t.Fatal("Rows should alias the matrix")
	}
}

// Property: Write→Read is the identity for arbitrary small matrices.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		rows, cols := int(r%20)+1, int(c%20)+1
		m := UniformMatrix(rows, cols, seed, -1e6, 1e6)
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return m.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: FileSource.ReadRows agrees with the in-memory matrix for
// arbitrary ranges.
func TestPropertyFileSourceRanges(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.frds")
	m := UniformMatrix(200, 7, 13, 0, 1)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	f := func(a, b uint8) bool {
		begin, end := int(a)%201, int(b)%201
		if begin > end {
			begin, end = end, begin
		}
		dst := make([]float64, (end-begin)*7)
		if err := src.ReadRows(begin, end, dst); err != nil {
			return false
		}
		for i := range dst {
			if dst[i] != m.Data[begin*7+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}
