package dataset

import (
	"context"
	"errors"
	"testing"
)

// plainSource strips a MemorySource down to the bare Source interface so the
// Reader's copy path (no RowSlicer, no ContextSource) is exercised.
type plainSource struct{ m *MemorySource }

func (p plainSource) NumRows() int { return p.m.NumRows() }
func (p plainSource) Cols() int    { return p.m.Cols() }
func (p plainSource) ReadRows(begin, end int, dst []float64) error {
	return p.m.ReadRows(begin, end, dst)
}

// ctxSource records the context it was handed, to prove the Reader forwards
// it to ContextSource implementations.
type ctxSource struct {
	plainSource
	got context.Context
}

func (c *ctxSource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	c.got = ctx
	return c.plainSource.ReadRows(begin, end, dst)
}

func testMatrix() *Matrix {
	m := NewMatrix(10, 3)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	return m
}

// TestReaderZeroCopy: a RowSlicer source is served without copying — the
// returned slice aliases the matrix storage and the scratch buffer is never
// touched.
func TestReaderZeroCopy(t *testing.T) {
	m := testMatrix()
	r := NewReader(NewMemorySource(m))
	if !r.Slices() {
		t.Fatal("MemorySource not detected as RowSlicer")
	}
	var buf []float64
	got, err := r.Read(context.Background(), 2, 5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("len = %d, want 9", len(got))
	}
	if &got[0] != &m.Data[2*3] {
		t.Fatal("zero-copy read did not alias the matrix storage")
	}
	if buf != nil {
		t.Fatal("zero-copy read allocated the scratch buffer")
	}
}

// TestReaderCopyPathGrowsBuf: a plain source is copied into the caller's
// buffer, which is grown once and then reused across reads.
func TestReaderCopyPathGrowsBuf(t *testing.T) {
	m := testMatrix()
	r := NewReader(plainSource{NewMemorySource(m)})
	if r.Slices() {
		t.Fatal("plain source misdetected as RowSlicer")
	}
	var buf []float64
	got, err := r.Read(context.Background(), 1, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if got[i] != float64(3+i) {
			t.Fatalf("cell %d = %v, want %v", i, got[i], float64(3+i))
		}
	}
	if cap(buf) < 9 {
		t.Fatal("buf not grown for caller reuse")
	}
	first := &buf[0]
	got2, err := r.Read(context.Background(), 0, 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got2[0] != first {
		t.Fatal("smaller read reallocated instead of reusing buf")
	}
}

// TestReaderPlainSourceHonorsCancel: for sources without a context path the
// Reader checks ctx before the read, so a cancelled pass never issues I/O.
func TestReaderPlainSourceHonorsCancel(t *testing.T) {
	r := NewReader(plainSource{NewMemorySource(testMatrix())})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf []float64
	if _, err := r.Read(ctx, 0, 2, &buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := r.ReadInto(ctx, 0, 2, make([]float64, 6)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadInto err = %v, want context.Canceled", err)
	}
}

// TestReaderForwardsContext: ContextSource implementations receive the
// caller's context verbatim.
func TestReaderForwardsContext(t *testing.T) {
	src := &ctxSource{plainSource: plainSource{NewMemorySource(testMatrix())}}
	r := NewReader(src)
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "mark")
	if err := r.ReadInto(ctx, 0, 1, make([]float64, 3)); err != nil {
		t.Fatal(err)
	}
	if src.got == nil || src.got.Value(key{}) != "mark" {
		t.Fatal("Reader did not forward the caller's context to ReadRowsContext")
	}
}
