//go:build !unix

package dataset

import (
	"errors"
	"os"
)

// errNoMmap makes OpenMappedSource take the positional-read fallback on
// platforms without syscall.Mmap.
var errNoMmap = errors.New("dataset: mmap unsupported on this platform")

func mapFile(*os.File, int) ([]byte, error) { return nil, errNoMmap }

func unmapFile([]byte) error { return nil }

func madviseSequential([]byte) {}
