package dataset

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestWriteLayoutRoundTrip(t *testing.T) {
	m := UniformMatrix(53, 7, 13, -5, 5)
	for _, layout := range []Layout{RowMajor, ColMajor} {
		var buf bytes.Buffer
		if err := WriteLayout(&buf, m, layout); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(got) {
			t.Fatalf("%v round trip mismatch", layout)
		}
	}
}

func TestReadAcceptsV1Header(t *testing.T) {
	// Hand-build a v1 file (24-byte header, row-major payload); Read and
	// OpenFileSource must still accept the old layout-less format.
	m := UniformMatrix(6, 2, 3, 0, 1)
	var buf bytes.Buffer
	buf.WriteString("FRDS")
	hdr := make([]byte, 20)
	hdr[0] = 1 // version, little-endian uint32
	putInt64LE(hdr[4:], int64(m.Rows))
	putInt64LE(hdr[12:], int64(m.Cols))
	buf.Write(hdr)
	pay := make([]byte, 8)
	for _, v := range m.Data {
		putFloat64LE(pay, v)
		buf.Write(pay)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("v1 round trip mismatch")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.frds")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Layout() != RowMajor {
		t.Fatalf("v1 layout = %v, want RowMajor", fs.Layout())
	}
	dst := make([]float64, len(m.Data))
	if err := fs.ReadRows(0, m.Rows, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != m.Data[i] {
			t.Fatalf("v1 source mismatch at %d", i)
		}
	}
}

func TestFileSourceColMajor(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cm.frds")
	m := UniformMatrix(40, 6, 7, -1, 1)
	if err := WriteFileLayout(path, m, ColMajor); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if fs.Layout() != ColMajor {
		t.Fatalf("layout = %v", fs.Layout())
	}
	// Ranged reads must return row-major data regardless of disk layout.
	for _, r := range [][2]int{{0, 40}, {3, 17}, {39, 40}, {10, 10}} {
		dst := make([]float64, (r[1]-r[0])*6)
		if err := fs.ReadRows(r[0], r[1], dst); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			if dst[i] != m.Data[r[0]*6+i] {
				t.Fatalf("range %v mismatch at %d", r, i)
			}
		}
	}
}

func TestMappedSourceRowMajor(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rm.frds")
	m := UniformMatrix(128, 4, 21, 0, 1)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	ms, err := OpenMappedSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if ms.NumRows() != 128 || ms.Cols() != 4 {
		t.Fatalf("shape %dx%d", ms.NumRows(), ms.Cols())
	}
	if ms.Layout() != RowMajor {
		t.Fatalf("layout = %v", ms.Layout())
	}
	// Boxed reads match.
	dst := make([]float64, 128*4)
	if err := ms.ReadRows(0, 128, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != m.Data[i] {
			t.Fatalf("boxed mismatch at %d", i)
		}
	}
	if !ms.Mapped() {
		t.Skip("mmap unavailable on this platform/filesystem; fallback verified above")
	}
	if ms.MappedBytes() <= 0 {
		t.Fatal("mapped source reports no mapped bytes")
	}
	// Mapped row-major files must expose the zero-copy fast path, and the
	// views must alias one underlying array (sub-slices of the mapping).
	sl, ok := Source(ms).(RowSlicer)
	if !ok {
		t.Fatal("mapped row-major file must implement RowSlicer")
	}
	rows := sl.Rows(16, 32)
	for i := range rows {
		if rows[i] != m.Data[16*4+i] {
			t.Fatalf("sliced mismatch at %d", i)
		}
	}
	whole := sl.Rows(0, 128)
	if &whole[16*4] != &rows[0] {
		t.Fatal("Rows views must alias the same mapping")
	}
}

func TestMappedSourceColMajorNoSlicer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cm.frds")
	m := UniformMatrix(64, 3, 5, -2, 2)
	if err := WriteFileLayout(path, m, ColMajor); err != nil {
		t.Fatal(err)
	}
	ms, err := OpenMappedSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	// Column-major payloads need a gather, so the source must NOT claim the
	// zero-copy capability (a false claim would hand the engine transposed
	// data — the PR 2 class of bug).
	if _, ok := Source(ms).(RowSlicer); ok {
		t.Fatal("column-major mapped file must not implement RowSlicer")
	}
	dst := make([]float64, 64*3)
	if err := ms.ReadRows(0, 64, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != m.Data[i] {
			t.Fatalf("gather mismatch at %d", i)
		}
	}
}

func TestMappedSourceCloseIdempotentAndTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.frds")
	m := UniformMatrix(32, 2, 9, 0, 1)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	ms, err := OpenMappedSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ms.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}

	// A file whose header promises more payload than the file holds must be
	// rejected at open — mapping it would fault on first touch instead.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.frds")
	if err := os.WriteFile(trunc, b[:len(b)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMappedSource(trunc); err == nil {
		t.Fatal("truncated payload: want error")
	}
}

func TestMappedSourceEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.frds")
	if err := WriteFile(path, NewMatrix(0, 4)); err != nil {
		t.Fatal(err)
	}
	ms, err := OpenMappedSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if ms.Mapped() {
		t.Fatal("empty payload must not map")
	}
	if ms.NumRows() != 0 || ms.Cols() != 4 {
		t.Fatalf("shape %dx%d", ms.NumRows(), ms.Cols())
	}
	if err := ms.ReadRows(0, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for both layouts, mapped reads, positional reads, and the
// original matrix agree on arbitrary ranges.
func TestPropertyMappedEquivalence(t *testing.T) {
	dir := t.TempDir()
	m := UniformMatrix(211, 3, 17, -3, 3)
	paths := map[Layout]string{}
	for layout, name := range map[Layout]string{RowMajor: "rm.frds", ColMajor: "cm.frds"} {
		p := filepath.Join(dir, name)
		if err := WriteFileLayout(p, m, layout); err != nil {
			t.Fatal(err)
		}
		paths[layout] = p
	}
	for layout, p := range paths {
		ms, err := OpenMappedSource(p)
		if err != nil {
			t.Fatal(err)
		}
		defer ms.Close()
		fs, err := OpenFileSource(p)
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		f := func(a, b uint8) bool {
			lo, hi := int(a)%212, int(b)%212
			if lo > hi {
				lo, hi = hi, lo
			}
			d1 := make([]float64, (hi-lo)*3)
			d2 := make([]float64, (hi-lo)*3)
			if err := ms.ReadRows(lo, hi, d1); err != nil {
				return false
			}
			if err := fs.ReadRows(lo, hi, d2); err != nil {
				return false
			}
			for i := range d1 {
				if d1[i] != d2[i] || d1[i] != m.Data[lo*3+i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(int64(layout) + 5))}); err != nil {
			t.Fatalf("layout %v: %v", layout, err)
		}
	}
}

func TestCalibratePrefetch(t *testing.T) {
	m := UniformMatrix(4096, 4, 31, 0, 1)
	res, err := CalibratePrefetch(context.Background(), NewMemorySource(m), 128, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth < 1 || res.Depth > 8 {
		t.Fatalf("depth %d out of candidate range", res.Depth)
	}
	if res.BlockRows != 128 {
		t.Fatalf("block rows %d", res.BlockRows)
	}
	if len(res.Probes) == 0 {
		t.Fatal("no probes recorded")
	}
	for _, p := range res.Probes {
		if p.HitShare < 0 || p.HitShare > 1 {
			t.Fatalf("probe %+v: hit share out of [0,1]", p)
		}
	}
	// Threshold 1.0 is unreachable (block 0 always misses), so calibration
	// must fall back to the best-scoring depth after probing all candidates.
	res2, err := CalibratePrefetch(context.Background(), NewMemorySource(m), 128, 8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Probes) != 4 {
		t.Fatalf("unreachable threshold must probe all candidates, got %d", len(res2.Probes))
	}
	// Degenerate: empty source calibrates to depth 1 without reading.
	res3, err := CalibratePrefetch(context.Background(), NewMemorySource(NewMatrix(0, 2)), 64, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Depth != 1 || len(res3.Probes) != 0 {
		t.Fatalf("empty source: %+v", res3)
	}
}

func putInt64LE(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putFloat64LE(b []byte, f float64) {
	putInt64LE(b, int64(math.Float64bits(f)))
}
