package dataset

import (
	"context"
	"errors"
	"testing"
	"time"

	"chapelfreeride/internal/obs"
)

// faultyRanges scans every SplitRows-aligned range once and returns the begin
// rows that faulted on first read.
func faultyRanges(t *testing.T, src Source, step int) []int {
	t.Helper()
	dst := make([]float64, step*src.Cols())
	var faulted []int
	for lo := 0; lo < src.NumRows(); lo += step {
		hi := lo + step
		if hi > src.NumRows() {
			hi = src.NumRows()
		}
		if err := src.ReadRows(lo, hi, dst[:(hi-lo)*src.Cols()]); err != nil {
			faulted = append(faulted, lo)
		}
	}
	return faulted
}

func TestFaultSourceDeterministic(t *testing.T) {
	m := UniformMatrix(4096, 2, 9, 0, 1)
	cfg := FaultConfig{Rate: 0.25, Seed: 7}
	a := faultyRanges(t, NewFaultSource(NewMemorySource(m), cfg), 64)
	b := faultyRanges(t, NewFaultSource(NewMemorySource(m), cfg), 64)
	if len(a) == 0 {
		t.Fatal("rate 0.25 over 64 ranges injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fault pattern at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := faultyRanges(t, NewFaultSource(NewMemorySource(m), FaultConfig{Rate: 0.25, Seed: 8}), 64)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault pattern")
	}
}

func TestFaultSourceTransientHeals(t *testing.T) {
	m := UniformMatrix(256, 2, 9, 0, 1)
	f := NewFaultSource(NewMemorySource(m), FaultConfig{Rate: 1, Seed: 3, FailCount: 2})
	dst := make([]float64, 128)
	var failures int
	for attempt := 0; attempt < 5; attempt++ {
		if err := f.ReadRows(0, 64, dst); err != nil {
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("want ErrInjectedFault, got %v", err)
			}
			failures++
			continue
		}
		break
	}
	if failures != 2 {
		t.Fatalf("FailCount=2: want exactly 2 failures before healing, got %d", failures)
	}
	for i, v := range dst {
		if v != m.Data[i] {
			t.Fatalf("healed read corrupted data at %d", i)
		}
	}
	if f.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", f.Injected())
	}
}

func TestRetrySourceRecovers(t *testing.T) {
	m := UniformMatrix(512, 2, 9, 0, 1)
	f := NewFaultSource(NewMemorySource(m), FaultConfig{Rate: 1, Seed: 3, FailCount: 2})
	r := NewRetrySource(f, 4, 100*time.Microsecond)
	retries0 := obs.Default.Value("dataset_read_retries_total")
	gaveup0 := obs.Default.Value("dataset_read_gaveup_total")
	dst := make([]float64, 1024)
	if err := r.ReadRows(0, 512, dst); err != nil {
		t.Fatalf("RetrySource should absorb FailCount=2 transients: %v", err)
	}
	for i, v := range dst {
		if v != m.Data[i] {
			t.Fatalf("recovered read corrupted data at %d", i)
		}
	}
	if d := obs.Default.Value("dataset_read_retries_total") - retries0; d != 2 {
		t.Fatalf("dataset_read_retries_total delta = %d, want 2", d)
	}
	if d := obs.Default.Value("dataset_read_gaveup_total") - gaveup0; d != 0 {
		t.Fatalf("dataset_read_gaveup_total delta = %d, want 0", d)
	}
}

func TestRetrySourceGivesUp(t *testing.T) {
	m := UniformMatrix(64, 1, 9, 0, 1)
	dst := make([]float64, 64)

	// Budget exhaustion: the fault outlives the retry budget.
	f := NewFaultSource(NewMemorySource(m), FaultConfig{Rate: 1, Seed: 3, FailCount: 10})
	r := NewRetrySource(f, 2, 100*time.Microsecond)
	gaveup0 := obs.Default.Value("dataset_read_gaveup_total")
	err := r.ReadRows(0, 64, dst)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("want wrapped ErrInjectedFault after exhausted budget, got %v", err)
	}
	if d := obs.Default.Value("dataset_read_gaveup_total") - gaveup0; d != 1 {
		t.Fatalf("dataset_read_gaveup_total delta = %d, want 1", d)
	}

	// Permanent fault: surfaces on the first attempt, no retries burned.
	p := NewFaultSource(NewMemorySource(m), FaultConfig{Rate: 1, PermanentRate: 1, Seed: 3})
	retries0 := obs.Default.Value("dataset_read_retries_total")
	err = NewRetrySource(p, 5, 100*time.Microsecond).ReadRows(0, 64, dst)
	if !IsPermanent(err) {
		t.Fatalf("want permanent fault, got %v", err)
	}
	if d := obs.Default.Value("dataset_read_retries_total") - retries0; d != 0 {
		t.Fatalf("permanent fault burned %d retries, want 0", d)
	}
}

func TestFaultSourceLatencyCancellable(t *testing.T) {
	m := UniformMatrix(64, 1, 9, 0, 1)
	f := NewFaultSource(NewMemorySource(m), FaultConfig{Latency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	dst := make([]float64, 64)
	t0 := time.Now()
	err := f.ReadRowsContext(ctx, 0, 64, dst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if wall := time.Since(t0); wall > 500*time.Millisecond {
		t.Fatalf("cancel took %v, want well under the 10s injected latency", wall)
	}
}

func TestRetrySourceBackoffCancellable(t *testing.T) {
	m := UniformMatrix(64, 1, 9, 0, 1)
	f := NewFaultSource(NewMemorySource(m), FaultConfig{Rate: 1, Seed: 3, FailCount: 100})
	r := NewRetrySource(f, 100, 10*time.Second) // backoff would dominate
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	dst := make([]float64, 64)
	t0 := time.Now()
	err := r.ReadRowsContext(ctx, 0, 64, dst)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if wall := time.Since(t0); wall > 500*time.Millisecond {
		t.Fatalf("cancel took %v, want well under the 10s backoff", wall)
	}
}

func TestReadRowsContextFallback(t *testing.T) {
	// A plain Source (no ReadRowsContext) still honours a pre-cancelled ctx
	// through the package helper.
	m := UniformMatrix(16, 1, 9, 0, 1)
	src := NewMemorySource(m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dst := make([]float64, 16)
	if err := ReadRowsContext(ctx, src, 0, 16, dst); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled via fallback, got %v", err)
	}
	if err := ReadRowsContext(context.Background(), src, 0, 16, dst); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
}
