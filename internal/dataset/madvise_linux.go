//go:build linux

package dataset

import "syscall"

// madviseSequential hints the kernel that the mapping will be scanned
// mostly forward, enlarging its read-ahead window — the kernel-side
// counterpart of the PrefetchSource layer the boxed path uses. Advisory
// only; errors are ignored.
func madviseSequential(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_SEQUENTIAL)
	}
}
