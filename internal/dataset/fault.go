package dataset

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"chapelfreeride/internal/obs"
)

// Fault-injection and retry counters. The retry/gaveup pair is the
// production-facing signal: a rising retries rate with a flat gaveup rate
// means the retry layer is absorbing transient faults; any gaveup increment
// means an error surfaced to the engine.
var (
	mFaultsTransient = obs.Default.Counter("dataset_faults_injected_total",
		"read faults injected by FaultSource", obs.Label{Key: "kind", Value: "transient"})
	mFaultsPermanent = obs.Default.Counter("dataset_faults_injected_total",
		"read faults injected by FaultSource", obs.Label{Key: "kind", Value: "permanent"})
	mReadRetries = obs.Default.Counter("dataset_read_retries_total",
		"reads retried by RetrySource after a transient failure")
	mReadGaveup = obs.Default.Counter("dataset_read_gaveup_total",
		"reads RetrySource abandoned: retry budget exhausted or permanent fault")
)

// Sentinel errors for injected faults. RetrySource treats ErrPermanentFault
// as non-retryable and surfaces it immediately; everything else is retried
// up to the budget.
var (
	// ErrInjectedFault marks a seeded transient read failure: retrying the
	// same range eventually succeeds.
	ErrInjectedFault = errors.New("dataset: injected transient read fault")
	// ErrPermanentFault marks a seeded permanent read failure: the range
	// never becomes readable, so retrying is pointless.
	ErrPermanentFault = errors.New("dataset: injected permanent read fault")
)

// IsPermanent reports whether err marks a fault that retrying cannot clear.
func IsPermanent(err error) bool { return errors.Is(err, ErrPermanentFault) }

// FaultConfig parameterizes FaultSource's deterministic fault injection.
type FaultConfig struct {
	// Rate is the fraction of read ranges (keyed by their begin row) that
	// fault. 0 injects nothing.
	Rate float64
	// PermanentRate is the fraction of faulting ranges whose fault never
	// clears; the rest are transient and heal after FailCount failures.
	PermanentRate float64
	// Seed fixes the fault pattern: the same (Seed, begin) always makes the
	// same transient/permanent/clean decision, independent of call order or
	// concurrency, so fault tests are reproducible.
	Seed int64
	// FailCount is how many times a transient range fails before it heals.
	// Defaults to 1.
	FailCount int
	// Latency is injected before every read (cancellable via
	// ReadRowsContext), simulating a slow or remote device.
	Latency time.Duration
}

// FaultSource wraps a Source and injects deterministic, seeded read faults
// and latency, standing in for the flaky disks and slow remote reads a
// runtime that "determines the order in which data instances are read from
// the disks" (paper §III) must survive. It deliberately does not implement
// RowSlicer, so engines take the copying ReadRows path where faults apply.
// Safe for concurrent use.
type FaultSource struct {
	src Source
	cfg FaultConfig

	mu       sync.Mutex
	attempts map[int]int // begin row → failures already injected
	injected int64
}

// NewFaultSource wraps src with the configured fault injection.
func NewFaultSource(src Source, cfg FaultConfig) *FaultSource {
	if cfg.FailCount < 1 {
		cfg.FailCount = 1
	}
	return &FaultSource{src: src, cfg: cfg, attempts: map[int]int{}}
}

// NumRows implements Source.
func (f *FaultSource) NumRows() int { return f.src.NumRows() }

// Cols implements Source.
func (f *FaultSource) Cols() int { return f.src.Cols() }

// Injected reports how many faults this source has injected so far.
func (f *FaultSource) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// mix64 is SplitMix64's finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps (seed, begin, salt) to a uniform value in [0, 1).
func (f *FaultSource) unit(begin int, salt uint64) float64 {
	h := mix64(uint64(f.cfg.Seed) ^ mix64(uint64(begin)*2654435761+salt))
	return float64(h>>11) / float64(1<<53)
}

// ReadRows implements Source.
func (f *FaultSource) ReadRows(begin, end int, dst []float64) error {
	return f.ReadRowsContext(context.Background(), begin, end, dst)
}

// ReadRowsContext implements ContextSource: the injected latency and the
// delegated read both honor ctx.
func (f *FaultSource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	if f.cfg.Latency > 0 {
		t := time.NewTimer(f.cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	} else if err := ctx.Err(); err != nil {
		return err
	}
	if f.cfg.Rate > 0 && f.unit(begin, 0) < f.cfg.Rate {
		if f.cfg.PermanentRate > 0 && f.unit(begin, 1) < f.cfg.PermanentRate {
			f.mu.Lock()
			f.injected++
			f.mu.Unlock()
			mFaultsPermanent.Inc()
			return fmt.Errorf("%w: rows [%d,%d)", ErrPermanentFault, begin, end)
		}
		f.mu.Lock()
		n := f.attempts[begin]
		if n < f.cfg.FailCount {
			f.attempts[begin] = n + 1
			f.injected++
			f.mu.Unlock()
			mFaultsTransient.Inc()
			return fmt.Errorf("%w: rows [%d,%d), failure %d of %d",
				ErrInjectedFault, begin, end, n+1, f.cfg.FailCount)
		}
		f.mu.Unlock()
	}
	return ReadRowsContext(ctx, f.src, begin, end, dst)
}

// RetrySource wraps a Source with bounded retry and exponential backoff:
// transient read failures are retried up to the budget with doubling,
// cancellable sleeps between attempts; permanent faults and exhausted
// budgets surface to the caller. Safe for concurrent use.
type RetrySource struct {
	src        Source
	maxRetries int
	base       time.Duration
	maxBackoff time.Duration
}

// NewRetrySource wraps src with maxRetries re-attempts after a failed read
// and an initial backoff of base (doubling per retry, capped at 64×base).
// base defaults to 1ms when non-positive.
func NewRetrySource(src Source, maxRetries int, base time.Duration) *RetrySource {
	if maxRetries < 0 {
		maxRetries = 0
	}
	if base <= 0 {
		base = time.Millisecond
	}
	return &RetrySource{src: src, maxRetries: maxRetries, base: base, maxBackoff: 64 * base}
}

// NumRows implements Source.
func (r *RetrySource) NumRows() int { return r.src.NumRows() }

// Cols implements Source.
func (r *RetrySource) Cols() int { return r.src.Cols() }

// ReadRows implements Source.
func (r *RetrySource) ReadRows(begin, end int, dst []float64) error {
	return r.ReadRowsContext(context.Background(), begin, end, dst)
}

// ReadRowsContext implements ContextSource with the retry loop. First
// non-retryable outcome wins: context cancellation returns ctx.Err()
// immediately, permanent faults and budget exhaustion return the last read
// error wrapped with the attempt count.
func (r *RetrySource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	backoff := r.base
	for attempt := 0; ; attempt++ {
		err := ReadRowsContext(ctx, r.src, begin, end, dst)
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if IsPermanent(err) || attempt >= r.maxRetries {
			mReadGaveup.Inc()
			return fmt.Errorf("dataset: read rows [%d,%d) failed after %d attempt(s): %w",
				begin, end, attempt+1, err)
		}
		mReadRetries.Inc()
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		if backoff < r.maxBackoff {
			backoff *= 2
		}
	}
}
