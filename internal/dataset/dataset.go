// Package dataset provides the synthetic workloads and data access layer for
// the reproduction: dense row-major matrices, deterministic generators for
// the paper's k-means and PCA inputs, a binary on-disk format, and row
// sources that the FREERIDE engine's splitter partitions into splits.
//
// The paper evaluates on a 12 MB and a 1.2 GB point dataset for k-means and
// on 1000×10,000 and 1000×100,000 matrices for PCA. Those datasets are not
// distributed, so this package regenerates equivalents from fixed seeds:
// Gaussian-mixture points for k-means (so clusters exist to find) and
// uniform matrices for PCA. The generators are deterministic given (shape,
// seed), which the tests rely on.
package dataset

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"chapelfreeride/internal/obs"
)

// Always-on I/O counters: how many rows and bytes each source kind moved
// into the engine. The zero-copy RowSlicer fast path counts rows and bytes
// served without a copy separately, so the split-handling cost model can
// distinguish copied from aliased data.
var (
	mRowsMem    = obs.Default.Counter("dataset_rows_read_total", "rows copied into worker buffers", obs.Label{Key: "source", Value: "memory"})
	mBytesMem   = obs.Default.Counter("dataset_bytes_read_total", "bytes copied into worker buffers", obs.Label{Key: "source", Value: "memory"})
	mRowsFile   = obs.Default.Counter("dataset_rows_read_total", "rows copied into worker buffers", obs.Label{Key: "source", Value: "file"})
	mBytesFile  = obs.Default.Counter("dataset_bytes_read_total", "bytes copied into worker buffers", obs.Label{Key: "source", Value: "file"})
	mRowsSliced = obs.Default.Counter("dataset_rows_sliced_total", "rows served zero-copy through the RowSlicer fast path")
)

// Matrix is a dense row-major float64 matrix. For point datasets each row is
// one data instance and each column one feature; this matches FREERIDE's
// "simple 2-D array view of the input dataset" (§IV-A of the paper).
type Matrix struct {
	Rows int
	Cols int
	Data []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dataset: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// SizeBytes reports the payload size of the matrix in bytes.
func (m *Matrix) SizeBytes() int64 { return int64(len(m.Data)) * 8 }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether two matrices have identical shape and bit-identical
// contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] && !(math.IsNaN(v) && math.IsNaN(o.Data[i])) {
			return false
		}
	}
	return true
}

// GaussianMixture generates n points of dimension dim drawn from k spherical
// Gaussian clusters with unit variance, plus the true cluster centers. The
// centers are placed uniformly in [-spread, spread]^dim. Deterministic for a
// fixed (n, dim, k, seed).
func GaussianMixture(n, dim, k int, seed int64) (points, centers *Matrix) {
	if k <= 0 {
		panic("dataset: GaussianMixture needs k > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	const spread = 10.0
	centers = NewMatrix(k, dim)
	for i := range centers.Data {
		centers.Data[i] = (rng.Float64()*2 - 1) * spread
	}
	points = NewMatrix(n, dim)
	for r := 0; r < n; r++ {
		c := centers.Row(rng.Intn(k))
		row := points.Row(r)
		for j := 0; j < dim; j++ {
			row[j] = c[j] + rng.NormFloat64()
		}
	}
	return points, centers
}

// UniformMatrix generates a rows×cols matrix with entries uniform in
// [lo, hi). Deterministic for a fixed (rows, cols, seed, lo, hi).
func UniformMatrix(rows, cols int, seed int64, lo, hi float64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*span
	}
	return m
}

// KMeansPointsForBytes returns the row count that makes an n×dim float64
// point dataset occupy approximately targetBytes, as used to size the
// paper's "12 MB" and "1.2 GB" k-means inputs.
func KMeansPointsForBytes(targetBytes int64, dim int) int {
	if dim <= 0 {
		panic("dataset: dim must be positive")
	}
	n := targetBytes / int64(dim*8)
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Binary on-disk format (FRDS). Two versions are readable; v2 is written:
//
//	v1: magic "FRDS", version uint32 1, rows int64, cols int64,
//	    data rows*cols float64 little-endian row-major (24-byte header)
//	v2: magic "FRDS", version uint32 2, layout uint32 (0 row-major /
//	    1 column-major), reserved uint32, rows int64, cols int64,
//	    data rows*cols float64 little-endian in the declared layout
//
// The v2 header is 32 bytes, a multiple of 8, so the float64 payload of an
// mmap'd file is 8-byte aligned and can be viewed in place as []float64
// (MappedSource relies on this).
var magic = [4]byte{'F', 'R', 'D', 'S'}

const (
	formatVersion1 = 1
	formatVersion2 = 2
)

// Header sizes per format version; the data payload starts right after.
const (
	headerSizeV1 = 4 + 4 + 8 + 8
	headerSizeV2 = 4 + 4 + 4 + 4 + 8 + 8
)

// Layout declares how a v2 file's float64 payload is ordered on disk.
type Layout uint32

const (
	// RowMajor stores instance after instance — the engine's split shape,
	// and the only layout the zero-copy RowSlicer fast path can alias.
	RowMajor Layout = 0
	// ColMajor stores feature column after feature column: reading one
	// feature across every instance is a single sequential scan. Row reads
	// gather, so this layout always goes through the boxed copy path.
	ColMajor Layout = 1
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case RowMajor:
		return "row-major"
	case ColMajor:
		return "col-major"
	default:
		return fmt.Sprintf("layout(%d)", uint32(l))
	}
}

// ErrBadFormat reports a malformed or truncated dataset file.
var ErrBadFormat = errors.New("dataset: bad file format")

// fileHeader is a parsed FRDS header, either version.
type fileHeader struct {
	layout     Layout
	rows, cols int
	dataOff    int64 // byte offset of the float64 payload
}

// parseHeader reads and validates an FRDS header from r.
func parseHeader(r io.Reader) (fileHeader, error) {
	var h fileHeader
	var fixed [8]byte // magic + version
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if [4]byte(fixed[0:4]) != magic {
		return h, fmt.Errorf("%w: bad magic %q", ErrBadFormat, fixed[0:4])
	}
	version := binary.LittleEndian.Uint32(fixed[4:8])
	switch version {
	case formatVersion1:
		h.dataOff = headerSizeV1
	case formatVersion2:
		var lay [8]byte // layout + reserved
		if _, err := io.ReadFull(r, lay[:]); err != nil {
			return h, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		h.layout = Layout(binary.LittleEndian.Uint32(lay[0:4]))
		if h.layout != RowMajor && h.layout != ColMajor {
			return h, fmt.Errorf("%w: unknown layout %d", ErrBadFormat, uint32(h.layout))
		}
		h.dataOff = headerSizeV2
	default:
		return h, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	var shape [16]byte
	if _, err := io.ReadFull(r, shape[:]); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	rows := int64(binary.LittleEndian.Uint64(shape[0:8]))
	cols := int64(binary.LittleEndian.Uint64(shape[8:16]))
	if rows < 0 || cols < 0 || (cols > 0 && rows > (1<<40)/cols) {
		return h, fmt.Errorf("%w: implausible shape %dx%d", ErrBadFormat, rows, cols)
	}
	h.rows, h.cols = int(rows), int(cols)
	return h, nil
}

// Write serializes the matrix to w in the current (v2) binary format,
// row-major.
func Write(w io.Writer, m *Matrix) error {
	return WriteLayout(w, m, RowMajor)
}

// WriteLayout serializes the matrix to w in the v2 binary format with the
// given payload layout.
func WriteLayout(w io.Writer, m *Matrix, layout Layout) error {
	if layout != RowMajor && layout != ColMajor {
		return fmt.Errorf("dataset: unknown layout %d", uint32(layout))
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [headerSizeV2]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion2)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(layout))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(int64(m.Rows)))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(int64(m.Cols)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	put := func(v float64) error {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, err := bw.Write(buf[:])
		return err
	}
	if layout == ColMajor {
		for j := 0; j < m.Cols; j++ {
			for i := 0; i < m.Rows; i++ {
				if err := put(m.Data[i*m.Cols+j]); err != nil {
					return err
				}
			}
		}
	} else {
		for _, v := range m.Data {
			if err := put(v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a matrix written by Write or WriteLayout (either format
// version, either layout; column-major payloads are transposed into the
// row-major Matrix).
func Read(r io.Reader) (*Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := parseHeader(br)
	if err != nil {
		return nil, err
	}
	m := NewMatrix(h.rows, h.cols)
	var buf [8]byte
	next := func() (float64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated data: %v", ErrBadFormat, err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}
	if h.layout == ColMajor {
		for j := 0; j < h.cols; j++ {
			for i := 0; i < h.rows; i++ {
				v, err := next()
				if err != nil {
					return nil, err
				}
				m.Data[i*h.cols+j] = v
			}
		}
		return m, nil
	}
	for i := range m.Data {
		v, err := next()
		if err != nil {
			return nil, err
		}
		m.Data[i] = v
	}
	return m, nil
}

// WriteFile serializes the matrix to a file (v2 format, row-major).
func WriteFile(path string, m *Matrix) error {
	return WriteFileLayout(path, m, RowMajor)
}

// WriteFileLayout serializes the matrix to a file in the given layout.
func WriteFileLayout(path string, m *Matrix, layout Layout) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLayout(f, m, layout); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile deserializes a matrix from a file.
func ReadFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Source abstracts row access for the FREERIDE engine: "the data instances
// owned by a processor and belonging to the subset specified are read". A
// Source may be fully in memory or backed by a file on disk; the engine's
// splitter partitions [0, NumRows) and workers call ReadRows per split.
//
// ReadRows must be safe for concurrent use by multiple workers reading
// disjoint ranges.
type Source interface {
	// NumRows reports the total number of data instances.
	NumRows() int
	// Cols reports the number of features per instance.
	Cols() int
	// ReadRows copies rows [begin, end) into dst, which must have room for
	// (end-begin)*Cols() values.
	ReadRows(begin, end int, dst []float64) error
}

// MemorySource serves rows from an in-memory matrix.
type MemorySource struct{ M *Matrix }

// NewMemorySource wraps a matrix as a Source.
func NewMemorySource(m *Matrix) *MemorySource { return &MemorySource{M: m} }

// NumRows implements Source.
func (s *MemorySource) NumRows() int { return s.M.Rows }

// Cols implements Source.
func (s *MemorySource) Cols() int { return s.M.Cols }

// ReadRows implements Source.
func (s *MemorySource) ReadRows(begin, end int, dst []float64) error {
	if begin < 0 || end > s.M.Rows || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.M.Rows)
	}
	n := copy(dst, s.M.Data[begin*s.M.Cols:end*s.M.Cols])
	if n != (end-begin)*s.M.Cols {
		return fmt.Errorf("dataset: ReadRows short copy: dst too small")
	}
	mRowsMem.Add(int64(end - begin))
	mBytesMem.Add(int64(n) * 8)
	return nil
}

// Rows implements RowSlicer: it returns rows [begin, end) as a slice
// aliasing the in-memory storage, letting engines avoid the copy.
func (s *MemorySource) Rows(begin, end int) []float64 {
	mRowsSliced.Add(int64(end - begin))
	return s.M.Data[begin*s.M.Cols : end*s.M.Cols]
}

// RowSlicer is an optional Source fast path: sources whose rows are already
// contiguous in memory can expose them without copying.
type RowSlicer interface {
	Rows(begin, end int) []float64
}

// ContextSource is an optional Source extension for cancellation: sources
// that can abandon an in-flight read when the caller's context is cancelled
// implement it. The engine reads through ReadRowsContext, so layered sources
// (fault injection, retry, prefetch) propagate cancellation all the way down
// to the slow operation — a sleeping backoff, an injected latency, a
// background fetch.
type ContextSource interface {
	Source
	// ReadRowsContext is ReadRows honoring ctx: it returns ctx.Err() (or an
	// error wrapping it) promptly once the context is cancelled.
	ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error
}

// ReadRowsContext reads rows [begin, end) from src honoring ctx. Sources
// implementing ContextSource receive the context; for plain sources the
// context is checked once before the (uninterruptible) ReadRows call, which
// bounds the cancellation latency by one read.
func ReadRowsContext(ctx context.Context, src Source, begin, end int, dst []float64) error {
	if cs, ok := src.(ContextSource); ok {
		return cs.ReadRowsContext(ctx, begin, end, dst)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return src.ReadRows(begin, end, dst)
}

// FileSource serves rows from a dataset file using positional reads, which
// simulates FREERIDE reading data instances from disk. It is safe for
// concurrent ReadRows calls (each uses ReadAt). Both format versions and
// both v2 layouts are served; column-major files gather each requested row
// with one positional read per column, so forward scans over them should go
// through a PrefetchSource (whose blocks amortize the gathers).
type FileSource struct {
	f      *os.File
	rows   int
	cols   int
	layout Layout
	off    int64 // payload byte offset
}

// OpenFileSource opens path (written by WriteFile/WriteFileLayout) as a
// Source.
func OpenFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	h, err := parseHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{f: f, rows: h.rows, cols: h.cols, layout: h.layout, off: h.dataOff}, nil
}

// NumRows implements Source.
func (s *FileSource) NumRows() int { return s.rows }

// Cols implements Source.
func (s *FileSource) Cols() int { return s.cols }

// Layout reports the on-disk payload layout.
func (s *FileSource) Layout() Layout { return s.layout }

// ReadRows implements Source with positional reads.
func (s *FileSource) ReadRows(begin, end int, dst []float64) error {
	if begin < 0 || end > s.rows || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.rows)
	}
	n := (end - begin) * s.cols
	if len(dst) < n {
		return fmt.Errorf("dataset: ReadRows dst len %d, need %d", len(dst), n)
	}
	if s.layout == ColMajor {
		// Gather: each column's [begin, end) segment is contiguous on disk.
		raw := make([]byte, (end-begin)*8)
		for j := 0; j < s.cols; j++ {
			off := s.off + (int64(j)*int64(s.rows)+int64(begin))*8
			if _, err := s.f.ReadAt(raw, off); err != nil {
				return err
			}
			for i := 0; i < end-begin; i++ {
				dst[i*s.cols+j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
			}
		}
	} else {
		raw := make([]byte, n*8)
		off := s.off + int64(begin)*int64(s.cols)*8
		if _, err := s.f.ReadAt(raw, off); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	mRowsFile.Add(int64(end - begin))
	mBytesFile.Add(int64(n) * 8)
	return nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }
