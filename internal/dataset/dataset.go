// Package dataset provides the synthetic workloads and data access layer for
// the reproduction: dense row-major matrices, deterministic generators for
// the paper's k-means and PCA inputs, a binary on-disk format, and row
// sources that the FREERIDE engine's splitter partitions into splits.
//
// The paper evaluates on a 12 MB and a 1.2 GB point dataset for k-means and
// on 1000×10,000 and 1000×100,000 matrices for PCA. Those datasets are not
// distributed, so this package regenerates equivalents from fixed seeds:
// Gaussian-mixture points for k-means (so clusters exist to find) and
// uniform matrices for PCA. The generators are deterministic given (shape,
// seed), which the tests rely on.
package dataset

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"chapelfreeride/internal/obs"
)

// Always-on I/O counters: how many rows and bytes each source kind moved
// into the engine. The zero-copy RowSlicer fast path counts rows and bytes
// served without a copy separately, so the split-handling cost model can
// distinguish copied from aliased data.
var (
	mRowsMem    = obs.Default.Counter("dataset_rows_read_total", "rows copied into worker buffers", obs.Label{Key: "source", Value: "memory"})
	mBytesMem   = obs.Default.Counter("dataset_bytes_read_total", "bytes copied into worker buffers", obs.Label{Key: "source", Value: "memory"})
	mRowsFile   = obs.Default.Counter("dataset_rows_read_total", "rows copied into worker buffers", obs.Label{Key: "source", Value: "file"})
	mBytesFile  = obs.Default.Counter("dataset_bytes_read_total", "bytes copied into worker buffers", obs.Label{Key: "source", Value: "file"})
	mRowsSliced = obs.Default.Counter("dataset_rows_sliced_total", "rows served zero-copy through the RowSlicer fast path")
)

// Matrix is a dense row-major float64 matrix. For point datasets each row is
// one data instance and each column one feature; this matches FREERIDE's
// "simple 2-D array view of the input dataset" (§IV-A of the paper).
type Matrix struct {
	Rows int
	Cols int
	Data []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dataset: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// SizeBytes reports the payload size of the matrix in bytes.
func (m *Matrix) SizeBytes() int64 { return int64(len(m.Data)) * 8 }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether two matrices have identical shape and bit-identical
// contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] && !(math.IsNaN(v) && math.IsNaN(o.Data[i])) {
			return false
		}
	}
	return true
}

// GaussianMixture generates n points of dimension dim drawn from k spherical
// Gaussian clusters with unit variance, plus the true cluster centers. The
// centers are placed uniformly in [-spread, spread]^dim. Deterministic for a
// fixed (n, dim, k, seed).
func GaussianMixture(n, dim, k int, seed int64) (points, centers *Matrix) {
	if k <= 0 {
		panic("dataset: GaussianMixture needs k > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	const spread = 10.0
	centers = NewMatrix(k, dim)
	for i := range centers.Data {
		centers.Data[i] = (rng.Float64()*2 - 1) * spread
	}
	points = NewMatrix(n, dim)
	for r := 0; r < n; r++ {
		c := centers.Row(rng.Intn(k))
		row := points.Row(r)
		for j := 0; j < dim; j++ {
			row[j] = c[j] + rng.NormFloat64()
		}
	}
	return points, centers
}

// UniformMatrix generates a rows×cols matrix with entries uniform in
// [lo, hi). Deterministic for a fixed (rows, cols, seed, lo, hi).
func UniformMatrix(rows, cols int, seed int64, lo, hi float64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + rng.Float64()*span
	}
	return m
}

// KMeansPointsForBytes returns the row count that makes an n×dim float64
// point dataset occupy approximately targetBytes, as used to size the
// paper's "12 MB" and "1.2 GB" k-means inputs.
func KMeansPointsForBytes(targetBytes int64, dim int) int {
	if dim <= 0 {
		panic("dataset: dim must be positive")
	}
	n := targetBytes / int64(dim*8)
	if n < 1 {
		n = 1
	}
	return int(n)
}

// Binary on-disk format:
//
//	magic   [4]byte  "FRDS"
//	version uint32   1
//	rows    int64
//	cols    int64
//	data    rows*cols float64, little-endian, row-major
var magic = [4]byte{'F', 'R', 'D', 'S'}

const formatVersion = 1

// headerSize is the byte offset of the data payload in the file format.
const headerSize = 4 + 4 + 8 + 8

// ErrBadFormat reports a malformed or truncated dataset file.
var ErrBadFormat = errors.New("dataset: bad file format")

// Write serializes the matrix to w in the binary format.
func Write(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(formatVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(m.Rows)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(m.Cols)); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a matrix written by Write.
func Read(r io.Reader) (*Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if got != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, got[:])
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	var rows, cols int64
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if rows < 0 || cols < 0 || (cols > 0 && rows > (1<<40)/cols) {
		return nil, fmt.Errorf("%w: implausible shape %dx%d", ErrBadFormat, rows, cols)
	}
	m := NewMatrix(int(rows), int(cols))
	var buf [8]byte
	for i := range m.Data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated data: %v", ErrBadFormat, err)
		}
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return m, nil
}

// WriteFile serializes the matrix to a file.
func WriteFile(path string, m *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile deserializes a matrix from a file.
func ReadFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Source abstracts row access for the FREERIDE engine: "the data instances
// owned by a processor and belonging to the subset specified are read". A
// Source may be fully in memory or backed by a file on disk; the engine's
// splitter partitions [0, NumRows) and workers call ReadRows per split.
//
// ReadRows must be safe for concurrent use by multiple workers reading
// disjoint ranges.
type Source interface {
	// NumRows reports the total number of data instances.
	NumRows() int
	// Cols reports the number of features per instance.
	Cols() int
	// ReadRows copies rows [begin, end) into dst, which must have room for
	// (end-begin)*Cols() values.
	ReadRows(begin, end int, dst []float64) error
}

// MemorySource serves rows from an in-memory matrix.
type MemorySource struct{ M *Matrix }

// NewMemorySource wraps a matrix as a Source.
func NewMemorySource(m *Matrix) *MemorySource { return &MemorySource{M: m} }

// NumRows implements Source.
func (s *MemorySource) NumRows() int { return s.M.Rows }

// Cols implements Source.
func (s *MemorySource) Cols() int { return s.M.Cols }

// ReadRows implements Source.
func (s *MemorySource) ReadRows(begin, end int, dst []float64) error {
	if begin < 0 || end > s.M.Rows || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.M.Rows)
	}
	n := copy(dst, s.M.Data[begin*s.M.Cols:end*s.M.Cols])
	if n != (end-begin)*s.M.Cols {
		return fmt.Errorf("dataset: ReadRows short copy: dst too small")
	}
	mRowsMem.Add(int64(end - begin))
	mBytesMem.Add(int64(n) * 8)
	return nil
}

// Rows implements RowSlicer: it returns rows [begin, end) as a slice
// aliasing the in-memory storage, letting engines avoid the copy.
func (s *MemorySource) Rows(begin, end int) []float64 {
	mRowsSliced.Add(int64(end - begin))
	return s.M.Data[begin*s.M.Cols : end*s.M.Cols]
}

// RowSlicer is an optional Source fast path: sources whose rows are already
// contiguous in memory can expose them without copying.
type RowSlicer interface {
	Rows(begin, end int) []float64
}

// ContextSource is an optional Source extension for cancellation: sources
// that can abandon an in-flight read when the caller's context is cancelled
// implement it. The engine reads through ReadRowsContext, so layered sources
// (fault injection, retry, prefetch) propagate cancellation all the way down
// to the slow operation — a sleeping backoff, an injected latency, a
// background fetch.
type ContextSource interface {
	Source
	// ReadRowsContext is ReadRows honoring ctx: it returns ctx.Err() (or an
	// error wrapping it) promptly once the context is cancelled.
	ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error
}

// ReadRowsContext reads rows [begin, end) from src honoring ctx. Sources
// implementing ContextSource receive the context; for plain sources the
// context is checked once before the (uninterruptible) ReadRows call, which
// bounds the cancellation latency by one read.
func ReadRowsContext(ctx context.Context, src Source, begin, end int, dst []float64) error {
	if cs, ok := src.(ContextSource); ok {
		return cs.ReadRowsContext(ctx, begin, end, dst)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return src.ReadRows(begin, end, dst)
}

// FileSource serves rows from a dataset file using positional reads, which
// simulates FREERIDE reading data instances from disk. It is safe for
// concurrent ReadRows calls (each uses ReadAt).
type FileSource struct {
	f    *os.File
	rows int
	cols int
}

// OpenFileSource opens path (written by WriteFile) as a Source.
func OpenFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if [4]byte(hdr[0:4]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != formatVersion {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	rows := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	cols := int64(binary.LittleEndian.Uint64(hdr[16:24]))
	if rows < 0 || cols < 0 {
		f.Close()
		return nil, fmt.Errorf("%w: negative shape", ErrBadFormat)
	}
	return &FileSource{f: f, rows: int(rows), cols: int(cols)}, nil
}

// NumRows implements Source.
func (s *FileSource) NumRows() int { return s.rows }

// Cols implements Source.
func (s *FileSource) Cols() int { return s.cols }

// ReadRows implements Source with a positional read.
func (s *FileSource) ReadRows(begin, end int, dst []float64) error {
	if begin < 0 || end > s.rows || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.rows)
	}
	n := (end - begin) * s.cols
	if len(dst) < n {
		return fmt.Errorf("dataset: ReadRows dst len %d, need %d", len(dst), n)
	}
	raw := make([]byte, n*8)
	off := int64(headerSize) + int64(begin)*int64(s.cols)*8
	if _, err := s.f.ReadAt(raw, off); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	mRowsFile.Add(int64(end - begin))
	mBytesFile.Add(int64(n) * 8)
	return nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }
