package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a rectangular numeric CSV into a matrix. When skipHeader
// is set the first record is discarded. Every remaining record must have
// the same number of numeric fields.
func ReadCSV(r io.Reader, skipHeader bool) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var (
		data []float64
		cols int
		rows int
		line int
	)
	for {
		rec, err := cr.Read()
		line++
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
		if skipHeader && line == 1 {
			continue
		}
		if cols == 0 {
			cols = len(rec)
		} else if len(rec) != cols {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, len(rec), cols)
		}
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d field %d: %w", line, i+1, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("dataset: csv contained no data rows")
	}
	m := NewMatrix(rows, cols)
	copy(m.Data, data)
	return m, nil
}

// WriteCSV serializes the matrix as numeric CSV, optionally with a header
// of the given column names (must match the column count when non-nil).
func WriteCSV(w io.Writer, m *Matrix, header []string) error {
	cw := csv.NewWriter(w)
	if header != nil {
		if len(header) != m.Cols {
			return fmt.Errorf("dataset: header has %d names for %d columns", len(header), m.Cols)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	rec := make([]string, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
