package dataset

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"unsafe"
)

// bstr views b as a string without copying, for strconv calls. Safe because
// ParseFloat does not retain its argument and b is not mutated during the
// call.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// parseFloatRow splits one numeric CSV line (no quoting) on commas and
// parses each field into dst, which must hold at least the line's field
// count. It allocates nothing: fields are sub-slices of line viewed as
// strings only for the duration of each ParseFloat. Returns the number of
// fields parsed.
func parseFloatRow(line []byte, dst []float64) (int, error) {
	n := 0
	for len(line) > 0 || n == 0 {
		field := line
		if i := bytes.IndexByte(line, ','); i >= 0 {
			field, line = line[:i], line[i+1:]
		} else {
			line = nil
		}
		if n >= len(dst) {
			return n, fmt.Errorf("field %d overflows row of %d", n+1, len(dst))
		}
		v, err := strconv.ParseFloat(bstr(field), 64)
		if err != nil {
			return n, fmt.Errorf("field %d: %w", n+1, err)
		}
		dst[n] = v
		n++
		if line == nil {
			break
		}
	}
	return n, nil
}

// countFields returns the comma-separated field count of a line.
func countFields(line []byte) int {
	return bytes.Count(line, []byte{','}) + 1
}

// trimEOL strips a trailing \r (Windows line endings) from a line already
// split on \n.
func trimEOL(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// ReadCSV parses a rectangular numeric CSV into a matrix. When skipHeader
// is set the first record is discarded. Every remaining record must have
// the same number of numeric fields. Blank lines are skipped, matching
// encoding/csv. The parse reuses one line buffer and one per-row float
// scratch across all rows instead of allocating field strings — on big
// inputs the only growth is the result matrix itself.
func ReadCSV(r io.Reader, skipHeader bool) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var (
		data []float64
		row  []float64 // reused per-row parse scratch
		cols int
		rows int
		line int
	)
	for sc.Scan() {
		line++
		rec := trimEOL(sc.Bytes())
		if skipHeader && line == 1 {
			continue
		}
		if len(rec) == 0 {
			continue
		}
		if cols == 0 {
			cols = countFields(rec)
			row = make([]float64, cols)
		}
		n, err := parseFloatRow(rec, row)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
		if n != cols {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, n, cols)
		}
		data = append(data, row...)
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
	}
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("dataset: csv contained no data rows")
	}
	m := NewMatrix(rows, cols)
	copy(m.Data, data)
	return m, nil
}

// WriteCSV serializes the matrix as numeric CSV, optionally with a header
// of the given column names (must match the column count when non-nil).
func WriteCSV(w io.Writer, m *Matrix, header []string) error {
	cw := csv.NewWriter(w)
	if header != nil {
		if len(header) != m.Cols {
			return fmt.Errorf("dataset: header has %d names for %d columns", len(header), m.Cols)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	rec := make([]string, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVFileSource serves a numeric CSV file as a dataset.Source: the file is
// indexed once at open (a byte offset per data row), and ReadRows reads
// just the requested line span and parses it with pooled scratch — the
// line buffer and field scratch are reused across ReadRows calls, so a
// steady-state scan allocates nothing per row. This is the "boxed, parse
// every time" baseline the binary format exists to beat; the abl-ingest
// experiment measures exactly that gap.
type CSVFileSource struct {
	f    *os.File
	cols int
	// offsets[i] is row i's first byte; offsets[rows] is the data end, so
	// row i's line (with EOL) is offsets[i]..offsets[i+1].
	offsets []int64
	pool    sync.Pool // *csvScratch
}

type csvScratch struct {
	span []byte
	row  []float64
}

// OpenCSVFileSource indexes path for random row access. When skipHeader is
// set the first line is excluded from the row index. The index pass also
// validates rectangularity, so ReadRows can't fail on shape later.
func OpenCSVFileSource(path string, skipHeader bool) (*CSVFileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &CSVFileSource{f: f}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var off int64
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		// Scanner strips the \n; the next line starts after it. A final
		// unterminated line just ends at EOF.
		next := off + int64(len(raw)) + 1
		rec := trimEOL(raw)
		if (skipHeader && line == 1) || len(rec) == 0 {
			off = next
			continue
		}
		if s.cols == 0 {
			s.cols = countFields(rec)
		} else if n := countFields(rec); n != s.cols {
			f.Close()
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, n, s.cols)
		}
		s.offsets = append(s.offsets, off)
		off = next
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: indexing csv: %w", err)
	}
	if len(s.offsets) == 0 {
		f.Close()
		return nil, fmt.Errorf("dataset: csv contained no data rows")
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.offsets = append(s.offsets, st.Size())
	return s, nil
}

// NumRows implements Source.
func (s *CSVFileSource) NumRows() int { return len(s.offsets) - 1 }

// Cols implements Source.
func (s *CSVFileSource) Cols() int { return s.cols }

// Close releases the file handle.
func (s *CSVFileSource) Close() error { return s.f.Close() }

// ReadRows implements Source: one positional read covering the row span,
// then an in-place parse with scratch reused across calls (and shared
// safely across concurrent readers through the pool).
func (s *CSVFileSource) ReadRows(begin, end int, dst []float64) error {
	rows := s.NumRows()
	if begin < 0 || end > rows || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, rows)
	}
	if need := (end - begin) * s.cols; len(dst) < need {
		return fmt.Errorf("dataset: ReadRows dst len %d, need %d", len(dst), need)
	}
	if begin == end {
		return nil
	}
	sc, _ := s.pool.Get().(*csvScratch)
	if sc == nil {
		sc = &csvScratch{row: make([]float64, s.cols)}
	}
	defer s.pool.Put(sc)
	span := s.offsets[end] - s.offsets[begin]
	if int64(cap(sc.span)) < span {
		sc.span = make([]byte, span)
	}
	buf := sc.span[:span]
	if _, err := s.f.ReadAt(buf, s.offsets[begin]); err != nil && err != io.EOF {
		return err
	}
	for r := begin; r < end; r++ {
		lo := s.offsets[r] - s.offsets[begin]
		hi := s.offsets[r+1] - s.offsets[begin]
		rec := buf[lo:hi]
		// Strip the EOL the index left on every line but possibly the last.
		if n := len(rec); n > 0 && rec[n-1] == '\n' {
			rec = rec[:n-1]
		}
		rec = trimEOL(rec)
		n, err := parseFloatRow(rec, sc.row)
		if err != nil {
			return fmt.Errorf("dataset: csv row %d: %w", r, err)
		}
		if n != s.cols {
			return fmt.Errorf("dataset: csv row %d has %d fields, want %d", r, n, s.cols)
		}
		copy(dst[(r-begin)*s.cols:], sc.row[:n])
	}
	mRowsFile.Add(int64(end - begin))
	mBytesFile.Add(span)
	return nil
}
