package dataset

import (
	"context"
	"fmt"
	"sync"

	"chapelfreeride/internal/obs"
)

// Prefetch cache counters, cumulative across every PrefetchSource in the
// process; per-source values stay available through Stats.
var (
	mPrefHits   = obs.Default.Counter("dataset_prefetch_hits_total", "block reads served from the read-ahead cache")
	mPrefMisses = obs.Default.Counter("dataset_prefetch_misses_total", "block reads that went to the underlying source")
	mPrefIssued = obs.Default.Counter("dataset_prefetch_issued_total", "background read-ahead fetches scheduled")
)

// PrefetchSource wraps a Source with a read-ahead cache: a background
// goroutine keeps the next window of rows resident so workers that scan
// mostly forward hit memory instead of the disk. FREERIDE determines "the
// order in which data instances are read from the disks" in its runtime;
// this is that I/O layer, usable in front of FileSource.
//
// The cache holds fixed-size row blocks with single-slot lookahead per
// block miss: a miss fetches the block synchronously and schedules the
// next block in the background. Reads spanning blocks assemble from
// multiple fetches. Safe for concurrent use.
type PrefetchSource struct {
	src       Source
	rd        Reader // capability-resolved view of src, shared by all fetches
	blockRows int

	mu     sync.Mutex
	blocks map[int][]float64 // block index → rows payload
	order  []int             // FIFO of resident blocks for eviction
	max    int               // max resident blocks

	pending map[int]*sync.WaitGroup // in-flight background fetches

	// stats
	hits, misses, prefetches int64
}

// NewPrefetchSource wraps src with a read-ahead cache of maxBlocks blocks
// of blockRows rows each. blockRows defaults to 4096 and maxBlocks to 8.
func NewPrefetchSource(src Source, blockRows, maxBlocks int) *PrefetchSource {
	if blockRows < 1 {
		blockRows = 4096
	}
	if maxBlocks < 2 {
		maxBlocks = 8
	}
	return &PrefetchSource{
		src:       src,
		rd:        NewReader(src),
		blockRows: blockRows,
		blocks:    map[int][]float64{},
		pending:   map[int]*sync.WaitGroup{},
		max:       maxBlocks,
	}
}

// NumRows implements Source.
func (p *PrefetchSource) NumRows() int { return p.src.NumRows() }

// Cols implements Source.
func (p *PrefetchSource) Cols() int { return p.src.Cols() }

// Stats reports cache behaviour: block hits, block misses, and background
// prefetches issued.
func (p *PrefetchSource) Stats() (hits, misses, prefetches int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.prefetches
}

// blockCount returns the number of blocks covering the source.
func (p *PrefetchSource) blockCount() int {
	return (p.src.NumRows() + p.blockRows - 1) / p.blockRows
}

// fetchBlock loads block b from the underlying source (no locks held),
// honoring ctx when the source supports cancellation.
func (p *PrefetchSource) fetchBlock(ctx context.Context, b int) ([]float64, error) {
	lo := b * p.blockRows
	hi := lo + p.blockRows
	if hi > p.src.NumRows() {
		hi = p.src.NumRows()
	}
	buf := make([]float64, (hi-lo)*p.src.Cols())
	if err := p.rd.ReadInto(ctx, lo, hi, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// install puts a fetched block into the cache, evicting FIFO.
func (p *PrefetchSource) install(b int, payload []float64) {
	if _, ok := p.blocks[b]; ok {
		return
	}
	p.blocks[b] = payload
	p.order = append(p.order, b)
	for len(p.order) > p.max {
		victim := p.order[0]
		p.order = p.order[1:]
		delete(p.blocks, victim)
	}
}

// getBlock returns block b's payload, fetching on miss and scheduling a
// background prefetch of block b+1. Both the synchronous fetch and the
// background lookahead run under ctx, so cancelling a run also abandons its
// in-flight read-ahead instead of leaving it to finish against a dead run.
func (p *PrefetchSource) getBlock(ctx context.Context, b int) ([]float64, error) {
	p.mu.Lock()
	if payload, ok := p.blocks[b]; ok {
		p.hits++
		mPrefHits.Inc()
		p.mu.Unlock()
		return payload, nil
	}
	// Wait for an in-flight fetch if one exists.
	if wg, ok := p.pending[b]; ok {
		p.mu.Unlock()
		wg.Wait()
		p.mu.Lock()
		if payload, ok := p.blocks[b]; ok {
			p.hits++
			mPrefHits.Inc()
			p.mu.Unlock()
			return payload, nil
		}
		p.mu.Unlock()
		// The background fetch failed; fall through to a direct fetch.
		payload, err := p.fetchBlock(ctx, b)
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.misses++
		mPrefMisses.Inc()
		p.install(b, payload)
		p.mu.Unlock()
		return payload, nil
	}
	p.misses++
	mPrefMisses.Inc()
	p.mu.Unlock()

	payload, err := p.fetchBlock(ctx, b)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	p.install(b, payload)
	// Schedule single-slot lookahead.
	next := b + 1
	if next < p.blockCount() {
		if _, resident := p.blocks[next]; !resident {
			if _, inflight := p.pending[next]; !inflight {
				wg := &sync.WaitGroup{}
				wg.Add(1)
				p.pending[next] = wg
				p.prefetches++
				mPrefIssued.Inc()
				go func() {
					defer wg.Done()
					pl, err := p.fetchBlock(ctx, next)
					p.mu.Lock()
					defer p.mu.Unlock()
					delete(p.pending, next)
					if err == nil {
						p.install(next, pl)
					}
				}()
			}
		}
	}
	p.mu.Unlock()
	return payload, nil
}

// ReadRows implements Source, assembling from cached blocks.
func (p *PrefetchSource) ReadRows(begin, end int, dst []float64) error {
	return p.ReadRowsContext(context.Background(), begin, end, dst)
}

// ReadRowsContext implements ContextSource, assembling from cached blocks
// with cancellable fetches.
func (p *PrefetchSource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	if begin < 0 || end > p.src.NumRows() || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, p.src.NumRows())
	}
	cols := p.src.Cols()
	if len(dst) < (end-begin)*cols {
		return fmt.Errorf("dataset: ReadRows dst len %d, need %d", len(dst), (end-begin)*cols)
	}
	for row := begin; row < end; {
		b := row / p.blockRows
		payload, err := p.getBlock(ctx, b)
		if err != nil {
			return err
		}
		blockLo := b * p.blockRows
		upto := (b + 1) * p.blockRows
		if upto > end {
			upto = end
		}
		src := payload[(row-blockLo)*cols : (upto-blockLo)*cols]
		copy(dst[(row-begin)*cols:], src)
		row = upto
	}
	return nil
}
