package dataset

import (
	"context"
	"fmt"
	"sync"

	"chapelfreeride/internal/obs"
)

// Prefetch cache counters, cumulative across every PrefetchSource in the
// process; per-source values stay available through Stats. Coalesced waits
// are block requests that found an identical fetch already in flight and
// waited for it instead of issuing a duplicate read — they cost latency but
// no I/O, which is why calibration treats them separately from resident
// hits.
var (
	mPrefHits   = obs.Default.Counter("dataset_prefetch_hits_total", "block reads served from the read-ahead cache")
	mPrefMisses = obs.Default.Counter("dataset_prefetch_misses_total", "block reads that went to the underlying source")
	mPrefIssued = obs.Default.Counter("dataset_prefetch_issued_total", "background read-ahead fetches scheduled")
	mPrefCoal   = obs.Default.Counter("dataset_prefetch_coalesced_total", "block reads coalesced onto an identical in-flight fetch")
	mPrefCalib  = obs.Default.Counter("dataset_prefetch_calibrations_total", "read-ahead calibration probes completed")
)

// PrefetchSource wraps a Source with a read-ahead cache: background
// goroutines keep the next window of rows resident so workers that scan
// mostly forward hit memory instead of the disk. FREERIDE determines "the
// order in which data instances are read from the disks" in its runtime;
// this is that I/O layer, usable in front of FileSource.
//
// The cache holds fixed-size row blocks with a depth-block read-ahead
// pipeline: every block touch (hit or miss) schedules background fetches
// until the next `depth` blocks are resident or in flight, so a steady
// forward scan stays double-buffered (or deeper) instead of stalling on
// every other block. Concurrent misses on the same block coalesce onto one
// underlying read through a per-block in-flight latch. Reads spanning
// blocks assemble from multiple fetches. Safe for concurrent use.
type PrefetchSource struct {
	src       Source
	rd        Reader // capability-resolved view of src, shared by all fetches
	blockRows int
	depth     int // read-ahead pipeline depth in blocks

	mu     sync.Mutex
	blocks map[int][]float64 // block index → rows payload
	order  []int             // FIFO of resident blocks for eviction
	max    int               // max resident blocks

	pending map[int]*sync.WaitGroup // per-block in-flight fetch latches

	// stats
	hits, coalesced, misses, prefetches int64
}

// NewPrefetchSource wraps src with a read-ahead cache of maxBlocks blocks
// of blockRows rows each and the default double-buffered pipeline.
// blockRows defaults to 4096 and maxBlocks to 8.
func NewPrefetchSource(src Source, blockRows, maxBlocks int) *PrefetchSource {
	return NewPrefetchSourceDepth(src, blockRows, maxBlocks, 2)
}

// NewPrefetchSourceDepth is NewPrefetchSource with an explicit read-ahead
// depth: up to depth blocks beyond the touched one are kept resident or in
// flight. Depth is clamped to [1, maxBlocks-1] so read-ahead can never
// evict the window it feeds; CalibratePrefetch picks a depth from measured
// hit shares.
func NewPrefetchSourceDepth(src Source, blockRows, maxBlocks, depth int) *PrefetchSource {
	if blockRows < 1 {
		blockRows = 4096
	}
	if maxBlocks < 2 {
		maxBlocks = 8
	}
	if depth < 1 {
		depth = 1
	}
	if depth > maxBlocks-1 {
		depth = maxBlocks - 1
	}
	return &PrefetchSource{
		src:       src,
		rd:        NewReader(src),
		blockRows: blockRows,
		depth:     depth,
		blocks:    map[int][]float64{},
		pending:   map[int]*sync.WaitGroup{},
		max:       maxBlocks,
	}
}

// NumRows implements Source.
func (p *PrefetchSource) NumRows() int { return p.src.NumRows() }

// Cols implements Source.
func (p *PrefetchSource) Cols() int { return p.src.Cols() }

// Depth reports the read-ahead pipeline depth in blocks.
func (p *PrefetchSource) Depth() int { return p.depth }

// BlockRows reports the block size in rows.
func (p *PrefetchSource) BlockRows() int { return p.blockRows }

// PrefetchStats is one source's cache behaviour, split the way the
// calibration needs it: ResidentHits found the block already cached,
// CoalescedWaits piggybacked on an in-flight fetch (no duplicate I/O, but
// latency), Misses fetched synchronously, Prefetches counts background
// fetches issued.
type PrefetchStats struct {
	ResidentHits   int64
	CoalescedWaits int64
	Misses         int64
	Prefetches     int64
}

// HitShare is the fraction of block requests served with no wait at all —
// the "pipeline kept up" measure calibration thresholds against. 0 when no
// requests were made.
func (s PrefetchStats) HitShare() float64 {
	total := s.ResidentHits + s.CoalescedWaits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.ResidentHits) / float64(total)
}

// Stats reports cache behaviour: block hits (resident or coalesced onto an
// in-flight fetch), synchronous misses, and background prefetches issued.
func (p *PrefetchSource) Stats() (hits, misses, prefetches int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits + p.coalesced, p.misses, p.prefetches
}

// DetailedStats reports the full per-source breakdown.
func (p *PrefetchSource) DetailedStats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PrefetchStats{
		ResidentHits:   p.hits,
		CoalescedWaits: p.coalesced,
		Misses:         p.misses,
		Prefetches:     p.prefetches,
	}
}

// blockCount returns the number of blocks covering the source.
func (p *PrefetchSource) blockCount() int {
	return (p.src.NumRows() + p.blockRows - 1) / p.blockRows
}

// fetchBlock loads block b from the underlying source (no locks held),
// honoring ctx when the source supports cancellation.
func (p *PrefetchSource) fetchBlock(ctx context.Context, b int) ([]float64, error) {
	lo := b * p.blockRows
	hi := lo + p.blockRows
	if hi > p.src.NumRows() {
		hi = p.src.NumRows()
	}
	buf := make([]float64, (hi-lo)*p.src.Cols())
	if err := p.rd.ReadInto(ctx, lo, hi, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// install puts a fetched block into the cache, evicting FIFO.
func (p *PrefetchSource) install(b int, payload []float64) {
	if _, ok := p.blocks[b]; ok {
		return
	}
	p.blocks[b] = payload
	p.order = append(p.order, b)
	for len(p.order) > p.max {
		victim := p.order[0]
		p.order = p.order[1:]
		delete(p.blocks, victim)
	}
}

// readAheadLocked tops the pipeline up behind block b: blocks b+1..b+depth
// that are neither resident nor in flight get a background fetch, each
// latched in pending so foreground misses coalesce onto it. Called with
// p.mu held, on hits and misses alike — a scan that always hits must still
// keep its read-ahead window moving, or the pipeline drains and every
// depth-th block misses.
func (p *PrefetchSource) readAheadLocked(ctx context.Context, b int) {
	count := p.blockCount()
	for nb := b + 1; nb <= b+p.depth && nb < count; nb++ {
		if _, resident := p.blocks[nb]; resident {
			continue
		}
		if _, inflight := p.pending[nb]; inflight {
			continue
		}
		wg := &sync.WaitGroup{}
		wg.Add(1)
		p.pending[nb] = wg
		p.prefetches++
		mPrefIssued.Inc()
		go func(nb int) {
			pl, err := p.fetchBlock(ctx, nb)
			p.mu.Lock()
			defer p.mu.Unlock()
			if p.pending[nb] == wg {
				delete(p.pending, nb)
			}
			if err == nil {
				p.install(nb, pl)
			}
			wg.Done()
		}(nb)
	}
}

// getBlock returns block b's payload: from the cache on a hit, by waiting
// on an identical in-flight fetch when one exists (the coalescing latch —
// two concurrent misses on b issue one underlying read), or by fetching
// synchronously. Every touch tops up the read-ahead pipeline. Both the
// synchronous fetch and the background lookahead run under ctx, so
// cancelling a run also abandons its in-flight read-ahead instead of
// leaving it to finish against a dead run.
func (p *PrefetchSource) getBlock(ctx context.Context, b int) ([]float64, error) {
	p.mu.Lock()
	for {
		if payload, ok := p.blocks[b]; ok {
			p.hits++
			mPrefHits.Inc()
			p.readAheadLocked(ctx, b)
			p.mu.Unlock()
			return payload, nil
		}
		wg, ok := p.pending[b]
		if !ok {
			break
		}
		// An identical fetch (background read-ahead or a concurrent
		// reader's miss) is in flight: wait for it instead of issuing a
		// duplicate read of the same block.
		p.coalesced++
		mPrefCoal.Inc()
		p.mu.Unlock()
		wg.Wait()
		p.mu.Lock()
		// Loop: the block is now resident (count it served), or the fetch
		// failed and this reader retries — becoming the fetcher itself if
		// it gets there first.
	}
	// Miss: latch the fetch under pending before dropping the lock, so
	// every concurrent reader of b coalesces onto this one read.
	p.misses++
	mPrefMisses.Inc()
	wg := &sync.WaitGroup{}
	wg.Add(1)
	p.pending[b] = wg
	p.mu.Unlock()

	payload, err := p.fetchBlock(ctx, b)

	p.mu.Lock()
	if p.pending[b] == wg {
		delete(p.pending, b)
	}
	if err == nil {
		p.install(b, payload)
		p.readAheadLocked(ctx, b)
	}
	// Release waiters only after install: they re-check under the lock and
	// find the payload (or, on error, retry the fetch themselves).
	wg.Done()
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// ReadRows implements Source, assembling from cached blocks.
func (p *PrefetchSource) ReadRows(begin, end int, dst []float64) error {
	return p.ReadRowsContext(context.Background(), begin, end, dst)
}

// ReadRowsContext implements ContextSource, assembling from cached blocks
// with cancellable fetches.
func (p *PrefetchSource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	if begin < 0 || end > p.src.NumRows() || begin > end {
		return fmt.Errorf("dataset: ReadRows range [%d,%d) out of [0,%d)", begin, end, p.src.NumRows())
	}
	cols := p.src.Cols()
	if len(dst) < (end-begin)*cols {
		return fmt.Errorf("dataset: ReadRows dst len %d, need %d", len(dst), (end-begin)*cols)
	}
	for row := begin; row < end; {
		b := row / p.blockRows
		payload, err := p.getBlock(ctx, b)
		if err != nil {
			return err
		}
		blockLo := b * p.blockRows
		upto := (b + 1) * p.blockRows
		if upto > end {
			upto = end
		}
		src := payload[(row-blockLo)*cols : (upto-blockLo)*cols]
		copy(dst[(row-begin)*cols:], src)
		row = upto
	}
	return nil
}

// CalibrationProbe records one calibration candidate's measured outcome.
type CalibrationProbe struct {
	Depth    int
	HitShare float64
}

// CalibrationResult is CalibratePrefetch's choice plus the evidence behind
// it, for reporting alongside bench results.
type CalibrationResult struct {
	// Depth is the chosen read-ahead pipeline depth.
	Depth int
	// BlockRows is the block size the probes ran with.
	BlockRows int
	// HitShare is the no-wait hit share the chosen depth achieved.
	HitShare float64
	// Probes lists every candidate measured, in probe order.
	Probes []CalibrationProbe
}

// CalibratePrefetch sizes the read-ahead pipeline from the prefetch
// counters: for each candidate depth (1, 2, 4, 8) it scans the first
// sampleBlocks blocks of src through a fresh PrefetchSource and reads the
// per-source view of the dataset_prefetch_{hits,misses,coalesced}_total
// counters, keeping the smallest depth whose no-wait hit share clears
// threshold (default 0.5 when <= 0) — or the best-scoring depth when none
// does. The probe is short by design: it reads sampleBlocks (default 16)
// blocks per candidate, so calibration costs a few dozen block reads before
// the real pass starts. blockRows defaults as in NewPrefetchSource.
func CalibratePrefetch(ctx context.Context, src Source, blockRows, sampleBlocks int, threshold float64) (CalibrationResult, error) {
	if blockRows < 1 {
		blockRows = 4096
	}
	if sampleBlocks < 2 {
		sampleBlocks = 16
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	totalBlocks := (src.NumRows() + blockRows - 1) / blockRows
	if sampleBlocks > totalBlocks {
		sampleBlocks = totalBlocks
	}
	res := CalibrationResult{Depth: 1, BlockRows: blockRows}
	if sampleBlocks == 0 {
		return res, nil
	}
	scratch := make([]float64, blockRows*src.Cols())
	best := -1.0
	for _, depth := range []int{1, 2, 4, 8} {
		ps := NewPrefetchSourceDepth(src, blockRows, depth+2, depth)
		for b := 0; b < sampleBlocks; b++ {
			lo := b * blockRows
			hi := lo + blockRows
			if hi > src.NumRows() {
				hi = src.NumRows()
			}
			if err := ps.ReadRowsContext(ctx, lo, hi, scratch[:(hi-lo)*src.Cols()]); err != nil {
				return res, err
			}
		}
		share := ps.DetailedStats().HitShare()
		res.Probes = append(res.Probes, CalibrationProbe{Depth: depth, HitShare: share})
		mPrefCalib.Inc()
		if share > best {
			best = share
			res.Depth, res.HitShare = depth, share
		}
		if share >= threshold {
			res.Depth, res.HitShare = depth, share
			break
		}
	}
	return res, nil
}
