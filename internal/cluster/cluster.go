// Package cluster simulates FREERIDE's cluster-wide execution. The original
// middleware ran on clusters: each node performed local reductions over its
// portion of the dataset with the multicore engine, and "after local
// combination, the results produced by all nodes in a cluster are combined
// again to form the final result, which is the global combination phase.
// The global combination phase can be achieved by a simple all-to-one
// reduce algorithm. If the size of the reduction object is large, both
// local and global combination phases perform a parallel merge. ... the
// communication involved in the global combination phase [is] handled
// internally by the middleware and is transparent to the application
// programmer" (paper §III-A).
//
// The paper's evaluation machine is a single 8-core node, so this package
// is the substitution for the cluster hardware: N simulated nodes (each an
// independent freeride.Engine over a block partition of the dataset)
// exchange serialized reduction objects over a pluggable transport —
// in-process channels or real TCP connections on the loopback interface —
// and combine them with either the all-to-one algorithm or a binary
// combining tree. The application code is identical to single-node code,
// preserving the middleware's transparency claim.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// hClusterPass records end-to-end cluster pass wall time (partition through
// global combination), the cluster-level counterpart of the engine's
// freeride_pass_duration_seconds.
var hClusterPass = obs.Default.Histogram("cluster_pass_duration_seconds",
	"end-to-end cluster pass wall time (partition, node passes, global combination)")

// Transport selects how nodes exchange reduction objects during global
// combination.
type Transport int

const (
	// InProcess exchanges objects over Go channels (zero-copy handoff).
	InProcess Transport = iota
	// TCP exchanges gob-serialized objects over loopback TCP connections,
	// exercising a real wire format and network stack.
	TCP
)

// String returns the transport name.
func (t Transport) String() string {
	switch t {
	case InProcess:
		return "in-process"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}

// CombineAlgo selects the global combination algorithm.
type CombineAlgo int

const (
	// AllToOne sends every node's object to node 0, which folds them in
	// node order — the paper's "simple all-to-one reduce algorithm".
	AllToOne CombineAlgo = iota
	// Tree combines pairwise in ⌈log2 N⌉ rounds — the scalable variant for
	// large reduction objects.
	Tree
)

// String returns the algorithm name.
func (a CombineAlgo) String() string {
	switch a {
	case AllToOne:
		return "all-to-one"
	case Tree:
		return "tree"
	default:
		return fmt.Sprintf("combine(%d)", int(a))
	}
}

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the node count. Defaults to 2.
	Nodes int
	// PerNode configures each node's multicore engine.
	PerNode freeride.Config
	// Transport selects the exchange mechanism. Default InProcess.
	Transport Transport
	// Combine selects the global combination algorithm. Default AllToOne.
	Combine CombineAlgo

	// DialTimeout bounds each TCP dial during global combination; failed
	// dials are retried DialRetries times with exponential backoff. Default
	// 2s.
	DialTimeout time.Duration
	// DialRetries is the number of re-dials after a failed dial. Default 2;
	// pass a negative value for no retries.
	DialRetries int
	// IOTimeout bounds each serialized-object exchange (send, accept, and
	// receive all get this deadline), so a wedged peer fails the combination
	// instead of hanging it. Default 10s.
	IOTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes < 1 {
		c.Nodes = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.DialRetries < 0 {
		c.DialRetries = 0
	} else if c.DialRetries == 0 {
		c.DialRetries = 2
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	return c
}

// Stats describes one cluster run.
type Stats struct {
	// Job is the coordinator-minted job id every node engine pass ran
	// under; the run's event-log entry and counter deltas carry it.
	Job obs.JobID
	// NodeRows is the number of data instances each node processed.
	NodeRows []int
	// BytesMoved is the serialized reduction-object volume exchanged
	// during global combination (0 for the in-process transport).
	BytesMoved int64
	// Rounds is the number of combination rounds (1 for all-to-one).
	Rounds int
	// Spans is the merged node-attributed timeline: the coordinator's own
	// spans plus every node pass's spans re-based onto the coordinator
	// clock, each tagged with its node id. Also flushed to obs.Log under
	// Job.
	Spans []obs.SpanRecord
	// NodeDeltas holds each node pass's exact counter deltas, indexed by
	// node — the same payload published process-wide under the
	// cluster_node_ prefix with a node label.
	NodeDeltas [][]obs.MetricDelta
}

// Result is the cluster-wide reduction outcome.
type Result struct {
	// Object is the globally combined reduction object.
	Object *robj.Object
	// Stats describes the run.
	Stats Stats
}

// ErrClusterClosed reports a Run on a cluster whose session has been closed.
var ErrClusterClosed = errors.New("cluster: cluster is closed")

// Cluster executes FREERIDE specs across simulated nodes. Like the engine it
// is built on, a Cluster is a session: each node's freeride.Engine (and its
// worker pool, scheduler pool, and reduction-object pool) is created on the
// first Run and reused by every subsequent pass, and with the TCP transport
// the global-combination connections are dialed once and kept for the
// cluster's lifetime. Close releases all of it; a closed cluster rejects
// further Runs.
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	closed  bool
	engines []*freeride.Engine

	meshMu sync.Mutex
	mesh   *tcpMesh

	// runMu serializes TCP passes end to end: the announce and combine
	// frames of one pass must not interleave with another's on the shared
	// per-connection gob streams.
	runMu sync.Mutex
}

// New creates a cluster session. Node engines start lazily on the first Run.
func New(cfg Config) *Cluster { return &Cluster{cfg: cfg.withDefaults()} }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// nodeEngines returns the session's per-node engines, creating them on
// first use.
func (c *Cluster) nodeEngines() ([]*freeride.Engine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	if c.engines == nil {
		c.engines = make([]*freeride.Engine, c.cfg.Nodes)
		for n := range c.engines {
			c.engines[n] = freeride.New(c.cfg.PerNode)
		}
	}
	return c.engines, nil
}

// Close ends the cluster session: every node engine's worker pool is drained
// and the persistent combination connections are torn down. Close is
// idempotent and safe on a cluster that never ran.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	engines := c.engines
	c.mu.Unlock()
	var first error
	for _, eng := range engines {
		if err := eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.meshMu.Lock()
	mesh := c.mesh
	c.mesh = nil
	c.meshMu.Unlock()
	if mesh != nil {
		mesh.close()
	}
	return first
}

// Release returns a finished cluster Result's combined reduction object to
// the root node engine's session pool, mirroring freeride.Engine.Release.
// After Release the caller must not touch the object; releasing a nil result
// (or one without an object) is a no-op.
func (c *Cluster) Release(res *Result) error {
	if res == nil || res.Object == nil {
		return nil
	}
	c.mu.Lock()
	var root *freeride.Engine
	if len(c.engines) > 0 {
		root = c.engines[0]
	}
	c.mu.Unlock()
	if root == nil {
		// No session engines exist, so there is no pool to return to.
		res.Object = nil
		return nil
	}
	fr := &freeride.Result{Object: res.Object}
	res.Object = nil
	return root.Release(fr)
}

// subSource exposes a contiguous row range of an underlying source as a
// node's local dataset. Reads route through a Reader resolved once at
// construction instead of re-probing the source's capabilities per call.
type subSource struct {
	src      dataset.Source
	rd       dataset.Reader
	lo, rows int
}

// NumRows implements dataset.Source.
func (s *subSource) NumRows() int { return s.rows }

// Cols implements dataset.Source.
func (s *subSource) Cols() int { return s.src.Cols() }

// ReadRows implements dataset.Source.
func (s *subSource) ReadRows(begin, end int, dst []float64) error {
	if begin < 0 || end > s.rows || begin > end {
		return fmt.Errorf("cluster: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.rows)
	}
	return s.src.ReadRows(s.lo+begin, s.lo+end, dst)
}

// ReadRowsContext implements dataset.ContextSource, forwarding the caller's
// context to the underlying source when it supports cancellation.
func (s *subSource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	if begin < 0 || end > s.rows || begin > end {
		return fmt.Errorf("cluster: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.rows)
	}
	return s.rd.ReadInto(ctx, s.lo+begin, s.lo+end, dst)
}

// slicingSubSource adds the zero-copy fast path on top of subSource. It is a
// separate type so that a plain subSource over a non-slicing source (a fault
// or retry wrapper, a file) does not claim dataset.RowSlicer it cannot honor
// — the engine type-asserts on the node source, and a false claim panics
// inside the worker loop.
type slicingSubSource struct{ *subSource }

// Rows implements dataset.RowSlicer.
func (s slicingSubSource) Rows(begin, end int) []float64 {
	return s.src.(dataset.RowSlicer).Rows(s.lo+begin, s.lo+end)
}

// partition returns each node's [lo, hi) row range (block partition, the
// distribution FREERIDE's splitter assumes: "the data instances owned by a
// processor").
func partition(totalRows, nodes int) [][2]int {
	out := make([][2]int, nodes)
	base, extra := totalRows/nodes, totalRows%nodes
	lo := 0
	for i := 0; i < nodes; i++ {
		size := base
		if i < extra {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

// nodeSource wraps the node's row range, preserving the zero-copy fast
// path when available.
func nodeSource(src dataset.Source, lo, hi int) dataset.Source {
	sub := &subSource{src: src, rd: dataset.NewReader(src), lo: lo, rows: hi - lo}
	if _, ok := src.(dataset.RowSlicer); ok {
		return slicingSubSource{sub}
	}
	return sub
}

// globalBegin is the context key-free mechanism by which reduction
// functions can learn their global row offset: the engine's args.Begin is
// node-local, so specs that need global indices should add the per-node
// offset themselves. Run rewrites the spec's Reduction to do this
// transparently by adding the node's base offset to args.Begin.
func offsetSpec(spec freeride.Spec, base int) freeride.Spec {
	inner := spec.Reduction
	spec.Reduction = func(args *freeride.ReductionArgs) error {
		args.Begin += base
		err := inner(args)
		args.Begin -= base
		return err
	}
	return spec
}

// Run executes the spec over the dataset across the simulated cluster:
// block-partition, per-node multicore reduction, then global combination
// over the configured transport. The spec's Finalize hook, if any, runs
// once on the combined result, mirroring single-node semantics. Specs using
// LocalInit state are not supported across nodes (the engine-level API
// covers that case on one node).
func (c *Cluster) Run(spec freeride.Spec, src dataset.Source) (*Result, error) {
	return c.RunContext(context.Background(), spec, src)
}

// RunContext is Run under a context: every node's engine pass inherits ctx
// (so one cancellation stops all nodes' workers), and a cancelled cluster
// run returns ctx.Err() without entering global combination.
func (c *Cluster) RunContext(ctx context.Context, spec freeride.Spec, src dataset.Source) (*Result, error) {
	if src == nil {
		return nil, errors.New("cluster: nil data source")
	}
	return c.runContext(ctx, spec, src.NumRows(), func(n, lo, hi int) (dataset.Source, func() error, error) {
		return nodeSource(src, lo, hi), nil, nil
	})
}

// RunFile executes the spec over a binary dataset file
// (dataset.WriteFileLayout format): each simulated node memory-maps the file
// locally and reduces over its block partition, so row-major files feed
// every node's engine zero-copy — the distributed analogue of handing the
// engine a dataset.MappedFile. This mirrors how FREERIDE nodes read their
// own disks: the coordinator ships no rows; each node opens its shard
// itself, and shared pages come from one page-cache copy.
func (c *Cluster) RunFile(spec freeride.Spec, path string) (*Result, error) {
	return c.RunFileContext(context.Background(), spec, path)
}

// RunFileContext is RunFile under a context. Each node's mapping lives
// exactly as long as its engine pass; when mapping is unavailable the node
// degrades to positional reads with identical results.
func (c *Cluster) RunFileContext(ctx context.Context, spec freeride.Spec, path string) (*Result, error) {
	// Probe the header once for the partition row count; each node then
	// opens its own mapping.
	hdr, err := dataset.OpenFileSource(path)
	if err != nil {
		return nil, err
	}
	rows := hdr.NumRows()
	if err := hdr.Close(); err != nil {
		return nil, err
	}
	return c.runContext(ctx, spec, rows, func(n, lo, hi int) (dataset.Source, func() error, error) {
		ms, err := dataset.OpenMappedSource(path)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: node %d: %w", n, err)
		}
		return nodeSource(ms, lo, hi), ms.Close, nil
	})
}

// runContext drives one cluster pass. openNode builds node n's local source
// over global rows [lo, hi) — a view of a shared in-memory source, or a
// freshly mapped file — plus an optional closer that runs when the node's
// engine pass finishes (borrowed row views never outlive the pass, so
// closing there is safe).
func (c *Cluster) runContext(ctx context.Context, spec freeride.Spec, totalRows int, openNode func(n, lo, hi int) (dataset.Source, func() error, error)) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Reduction == nil && spec.BlockReduction == nil {
		return nil, freeride.ErrNoReduction
	}
	if spec.LocalInit != nil {
		return nil, errors.New("cluster: user-managed local state is single-node only")
	}
	cfg := c.cfg
	engines, err := c.nodeEngines()
	if err != nil {
		return nil, err
	}
	parts := partition(totalRows, cfg.Nodes)

	// Coordinator-side observability: one job id spans the whole cluster
	// pass, and the coordinator trace becomes the spine every node pass's
	// spans are merged onto.
	job := obs.NextJobID()
	passStart := time.Now()
	tr := obs.NewTrace()
	tr.SetJob(job)
	runSpan := tr.Start("cluster-run")
	finishTrace := func() {
		runSpan.End()
		hClusterPass.ObserveDuration(time.Since(passStart))
	}

	// Distributed trace propagation: on the TCP transport the job id is
	// announced to every node over the mesh before the node passes start, so
	// each node's engine pass runs under the id it actually received off the
	// wire. The in-process transport hands the id over directly. The whole
	// TCP pass holds runMu so announce and combine frames of concurrent
	// passes never interleave on the shared gob streams.
	nodeJobs := make([]obs.JobID, cfg.Nodes)
	for n := range nodeJobs {
		nodeJobs[n] = job
	}
	useMesh := cfg.Transport == TCP && cfg.Nodes > 1
	var mesh *tcpMesh
	if useMesh {
		c.runMu.Lock()
		defer c.runMu.Unlock()
		mesh, err = c.ensureMesh()
		if err != nil {
			finishTrace()
			return nil, err
		}
		aSpan := runSpan.Child("announce")
		got, aerr := mesh.announce(job, cfg)
		aSpan.End()
		if aerr != nil {
			c.dropMesh(mesh)
			finishTrace()
			obs.Log.AddRun(job, tr.Records())
			return nil, aerr
		}
		nodeJobs = got
	}

	// Per-node local reduction on the session's persistent node engines.
	// Each node gets a coordinator span and a clock offset captured at
	// launch, so its shipped spans can be re-based onto the coordinator
	// timeline afterwards.
	finalize := spec.Finalize
	spec.Finalize = nil
	results := make([]*freeride.Result, cfg.Nodes)
	errs := make([]error, cfg.Nodes)
	nodeSpanIDs := make([]int64, cfg.Nodes)
	offsets := make([]time.Duration, cfg.Nodes)
	var wg sync.WaitGroup
	for n := 0; n < cfg.Nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			nSpan := runSpan.Child("node-" + strconv.Itoa(n))
			nodeSpanIDs[n] = nSpan.ID()
			offsets[n] = tr.Elapsed()
			defer nSpan.End()
			lo, hi := parts[n][0], parts[n][1]
			nsrc, closer, oerr := openNode(n, lo, hi)
			if oerr != nil {
				errs[n] = oerr
				return
			}
			results[n], errs[n] = engines[n].RunContextWithJob(ctx, offsetSpec(spec, lo), nsrc, nodeJobs[n])
			if closer != nil {
				if cerr := closer(); cerr != nil && errs[n] == nil {
					errs[n] = cerr
				}
			}
		}(n)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		finishTrace()
		obs.Log.AddRun(job, tr.Records())
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			finishTrace()
			obs.Log.AddRun(job, tr.Records())
			return nil, err
		}
	}

	// Global combination over the transport. The TCP path ships each node's
	// spans and counter deltas back with its serialized object; the
	// in-process path hands them over directly.
	gSpan := runSpan.Child(freeride.PhaseGlobalCombine)
	nodeSpans := make([][]obs.SpanRecord, cfg.Nodes)
	nodeDeltas := make([][]obs.MetricDelta, cfg.Nodes)
	nodeSpans[0] = results[0].Stats.Spans
	nodeDeltas[0] = results[0].Stats.JobDeltas
	var (
		combined *robj.Object
		moved    int64
		rounds   int
	)
	if useMesh {
		payloads := make([]nodePayload, cfg.Nodes)
		for n, r := range results {
			payloads[n] = nodePayload{Obj: r.Object, Job: r.Stats.Job, Spans: r.Stats.Spans, Deltas: r.Stats.JobDeltas}
		}
		var shipped []*wireObject
		combined, shipped, moved, rounds, err = mesh.combine(payloads, cfg.Combine, cfg)
		if err != nil {
			c.dropMesh(mesh)
		} else {
			for n := 1; n < cfg.Nodes; n++ {
				nodeSpans[n] = shipped[n].Spans
				nodeDeltas[n] = shipped[n].Deltas
			}
		}
	} else {
		objects := make([]*robj.Object, cfg.Nodes)
		for n, r := range results {
			objects[n] = r.Object
			nodeSpans[n] = r.Stats.Spans
			nodeDeltas[n] = r.Stats.JobDeltas
		}
		combined, moved, rounds, err = combineInProcess(objects, cfg.Combine)
	}
	gSpan.End()
	if err != nil {
		finishTrace()
		obs.Log.AddRun(job, tr.Records())
		return nil, err
	}
	// Both algorithms fold into the root's object, so the non-root objects
	// are spent; return them to their node engines' pools for the next pass.
	for n := 1; n < cfg.Nodes; n++ {
		if rerr := engines[n].Release(results[n]); rerr != nil {
			finishTrace()
			return nil, rerr
		}
	}

	res := &Result{Object: combined}
	res.Stats.Job = job
	for n := range parts {
		res.Stats.NodeRows = append(res.Stats.NodeRows, parts[n][1]-parts[n][0])
	}
	res.Stats.BytesMoved = moved
	res.Stats.Rounds = rounds
	res.Stats.NodeDeltas = nodeDeltas

	if finalize != nil {
		fr := &freeride.Result{Object: combined}
		if err := finalize(fr); err != nil {
			finishTrace()
			obs.Log.AddRun(job, tr.Records())
			return nil, err
		}
	}

	// Merge the node timelines onto the coordinator trace (node spans keep
	// their internal structure, re-based and re-parented under their node's
	// coordinator span) and publish each node's counter deltas under the
	// node-labeled cluster_node_ view. The prefix keeps the node-attributed
	// family separate from the process-wide counters the in-process node
	// engines also increment, so neither view double-counts.
	finishTrace()
	sets := make([]obs.NodeSpans, 0, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		sets = append(sets, obs.NodeSpans{Node: n, Offset: offsets[n], Parent: nodeSpanIDs[n], Spans: nodeSpans[n]})
	}
	res.Stats.Spans = obs.MergeNodeSpans(tr.Records(), sets)
	obs.Log.AddRun(job, res.Stats.Spans)
	for n := 0; n < cfg.Nodes; n++ {
		obs.Default.AddDeltas("cluster_node_", "per-node counter delta shipped from a node engine pass",
			nodeDeltas[n], obs.Label{Key: "node", Value: strconv.Itoa(n)})
	}
	return res, nil
}

// ensureMesh returns the session's persistent connection mesh, establishing
// it on first use. The mesh now exists before the node passes run, because
// the pre-pass job announce travels over it. A mesh that latched broken on a
// failed announce/combine frame is never handed back: its gob streams are in
// an undefined state, so it is torn down here and rebuilt from scratch even
// if the pass that broke it failed to call dropMesh.
func (c *Cluster) ensureMesh() (*tcpMesh, error) {
	c.meshMu.Lock()
	defer c.meshMu.Unlock()
	if c.mesh != nil && c.mesh.broken.Load() {
		c.mesh.close()
		c.mesh = nil
	}
	if c.mesh == nil {
		mesh, err := newTCPMesh(c.cfg.Nodes, c.cfg)
		if err != nil {
			return nil, err
		}
		c.mesh = mesh
	}
	return c.mesh, nil
}

// dropMesh discards a mesh whose gob streams are in an undefined state (a
// failed announce or combine); the next pass re-dials from scratch — PR 2's
// per-call timeout and dial-retry semantics apply to that re-dial as they
// did to the original.
func (c *Cluster) dropMesh(mesh *tcpMesh) {
	c.meshMu.Lock()
	if c.mesh == mesh {
		c.mesh = nil
	}
	c.meshMu.Unlock()
	mesh.close()
}

// combineInProcess folds the objects without serialization.
func combineInProcess(objects []*robj.Object, algo CombineAlgo) (*robj.Object, int64, int, error) {
	switch algo {
	case Tree:
		rounds := 0
		live := objects
		for len(live) > 1 {
			rounds++
			next := make([]*robj.Object, 0, (len(live)+1)/2)
			var wg sync.WaitGroup
			errs := make([]error, len(live)/2)
			for i := 0; i+1 < len(live); i += 2 {
				next = append(next, live[i])
				wg.Add(1)
				go func(slot int, dst, src *robj.Object) {
					defer wg.Done()
					errs[slot] = dst.CombineFrom(src)
				}(i/2, live[i], live[i+1])
			}
			if len(live)%2 == 1 {
				next = append(next, live[len(live)-1])
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, 0, 0, err
				}
			}
			live = next
		}
		return live[0], 0, rounds, nil
	default: // AllToOne
		dst := objects[0]
		for _, o := range objects[1:] {
			if err := dst.CombineFrom(o); err != nil {
				return nil, 0, 0, err
			}
		}
		rounds := 0
		if len(objects) > 1 {
			rounds = 1
		}
		return dst, 0, rounds, nil
	}
}
