// Package cluster simulates FREERIDE's cluster-wide execution. The original
// middleware ran on clusters: each node performed local reductions over its
// portion of the dataset with the multicore engine, and "after local
// combination, the results produced by all nodes in a cluster are combined
// again to form the final result, which is the global combination phase.
// The global combination phase can be achieved by a simple all-to-one
// reduce algorithm. If the size of the reduction object is large, both
// local and global combination phases perform a parallel merge. ... the
// communication involved in the global combination phase [is] handled
// internally by the middleware and is transparent to the application
// programmer" (paper §III-A).
//
// The paper's evaluation machine is a single 8-core node, so this package
// is the substitution for the cluster hardware: N simulated nodes (each an
// independent freeride.Engine over a block partition of the dataset)
// exchange serialized reduction objects over a pluggable transport —
// in-process channels or real TCP connections on the loopback interface —
// and combine them with either the all-to-one algorithm or a binary
// combining tree. The application code is identical to single-node code,
// preserving the middleware's transparency claim.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// Transport selects how nodes exchange reduction objects during global
// combination.
type Transport int

const (
	// InProcess exchanges objects over Go channels (zero-copy handoff).
	InProcess Transport = iota
	// TCP exchanges gob-serialized objects over loopback TCP connections,
	// exercising a real wire format and network stack.
	TCP
)

// String returns the transport name.
func (t Transport) String() string {
	switch t {
	case InProcess:
		return "in-process"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", int(t))
	}
}

// CombineAlgo selects the global combination algorithm.
type CombineAlgo int

const (
	// AllToOne sends every node's object to node 0, which folds them in
	// node order — the paper's "simple all-to-one reduce algorithm".
	AllToOne CombineAlgo = iota
	// Tree combines pairwise in ⌈log2 N⌉ rounds — the scalable variant for
	// large reduction objects.
	Tree
)

// String returns the algorithm name.
func (a CombineAlgo) String() string {
	switch a {
	case AllToOne:
		return "all-to-one"
	case Tree:
		return "tree"
	default:
		return fmt.Sprintf("combine(%d)", int(a))
	}
}

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the node count. Defaults to 2.
	Nodes int
	// PerNode configures each node's multicore engine.
	PerNode freeride.Config
	// Transport selects the exchange mechanism. Default InProcess.
	Transport Transport
	// Combine selects the global combination algorithm. Default AllToOne.
	Combine CombineAlgo

	// DialTimeout bounds each TCP dial during global combination; failed
	// dials are retried DialRetries times with exponential backoff. Default
	// 2s.
	DialTimeout time.Duration
	// DialRetries is the number of re-dials after a failed dial. Default 2;
	// pass a negative value for no retries.
	DialRetries int
	// IOTimeout bounds each serialized-object exchange (send, accept, and
	// receive all get this deadline), so a wedged peer fails the combination
	// instead of hanging it. Default 10s.
	IOTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Nodes < 1 {
		c.Nodes = 2
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.DialRetries < 0 {
		c.DialRetries = 0
	} else if c.DialRetries == 0 {
		c.DialRetries = 2
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	return c
}

// Stats describes one cluster run.
type Stats struct {
	// NodeRows is the number of data instances each node processed.
	NodeRows []int
	// BytesMoved is the serialized reduction-object volume exchanged
	// during global combination (0 for the in-process transport).
	BytesMoved int64
	// Rounds is the number of combination rounds (1 for all-to-one).
	Rounds int
}

// Result is the cluster-wide reduction outcome.
type Result struct {
	// Object is the globally combined reduction object.
	Object *robj.Object
	// Stats describes the run.
	Stats Stats
}

// Cluster executes FREERIDE specs across simulated nodes.
type Cluster struct {
	cfg Config
}

// New creates a cluster.
func New(cfg Config) *Cluster { return &Cluster{cfg: cfg.withDefaults()} }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// subSource exposes a contiguous row range of an underlying source as a
// node's local dataset.
type subSource struct {
	src      dataset.Source
	lo, rows int
}

// NumRows implements dataset.Source.
func (s *subSource) NumRows() int { return s.rows }

// Cols implements dataset.Source.
func (s *subSource) Cols() int { return s.src.Cols() }

// ReadRows implements dataset.Source.
func (s *subSource) ReadRows(begin, end int, dst []float64) error {
	if begin < 0 || end > s.rows || begin > end {
		return fmt.Errorf("cluster: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.rows)
	}
	return s.src.ReadRows(s.lo+begin, s.lo+end, dst)
}

// ReadRowsContext implements dataset.ContextSource, forwarding the caller's
// context to the underlying source when it supports cancellation.
func (s *subSource) ReadRowsContext(ctx context.Context, begin, end int, dst []float64) error {
	if begin < 0 || end > s.rows || begin > end {
		return fmt.Errorf("cluster: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.rows)
	}
	return dataset.ReadRowsContext(ctx, s.src, s.lo+begin, s.lo+end, dst)
}

// slicingSubSource adds the zero-copy fast path on top of subSource. It is a
// separate type so that a plain subSource over a non-slicing source (a fault
// or retry wrapper, a file) does not claim dataset.RowSlicer it cannot honor
// — the engine type-asserts on the node source, and a false claim panics
// inside the worker loop.
type slicingSubSource struct{ *subSource }

// Rows implements dataset.RowSlicer.
func (s slicingSubSource) Rows(begin, end int) []float64 {
	return s.src.(dataset.RowSlicer).Rows(s.lo+begin, s.lo+end)
}

// partition returns each node's [lo, hi) row range (block partition, the
// distribution FREERIDE's splitter assumes: "the data instances owned by a
// processor").
func partition(totalRows, nodes int) [][2]int {
	out := make([][2]int, nodes)
	base, extra := totalRows/nodes, totalRows%nodes
	lo := 0
	for i := 0; i < nodes; i++ {
		size := base
		if i < extra {
			size++
		}
		out[i] = [2]int{lo, lo + size}
		lo += size
	}
	return out
}

// nodeSource wraps the node's row range, preserving the zero-copy fast
// path when available.
func nodeSource(src dataset.Source, lo, hi int) dataset.Source {
	sub := &subSource{src: src, lo: lo, rows: hi - lo}
	if _, ok := src.(dataset.RowSlicer); ok {
		return slicingSubSource{sub}
	}
	return sub
}

// globalBegin is the context key-free mechanism by which reduction
// functions can learn their global row offset: the engine's args.Begin is
// node-local, so specs that need global indices should add the per-node
// offset themselves. Run rewrites the spec's Reduction to do this
// transparently by adding the node's base offset to args.Begin.
func offsetSpec(spec freeride.Spec, base int) freeride.Spec {
	inner := spec.Reduction
	spec.Reduction = func(args *freeride.ReductionArgs) error {
		args.Begin += base
		err := inner(args)
		args.Begin -= base
		return err
	}
	return spec
}

// Run executes the spec over the dataset across the simulated cluster:
// block-partition, per-node multicore reduction, then global combination
// over the configured transport. The spec's Finalize hook, if any, runs
// once on the combined result, mirroring single-node semantics. Specs using
// LocalInit state are not supported across nodes (the engine-level API
// covers that case on one node).
func (c *Cluster) Run(spec freeride.Spec, src dataset.Source) (*Result, error) {
	return c.RunContext(context.Background(), spec, src)
}

// RunContext is Run under a context: every node's engine pass inherits ctx
// (so one cancellation stops all nodes' workers), and a cancelled cluster
// run returns ctx.Err() without entering global combination.
func (c *Cluster) RunContext(ctx context.Context, spec freeride.Spec, src dataset.Source) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Reduction == nil {
		return nil, freeride.ErrNoReduction
	}
	if spec.LocalInit != nil {
		return nil, errors.New("cluster: user-managed local state is single-node only")
	}
	if src == nil {
		return nil, errors.New("cluster: nil data source")
	}
	cfg := c.cfg
	parts := partition(src.NumRows(), cfg.Nodes)

	// Per-node local reduction (each node is an independent engine).
	finalize := spec.Finalize
	spec.Finalize = nil
	results := make([]*freeride.Result, cfg.Nodes)
	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for n := 0; n < cfg.Nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			lo, hi := parts[n][0], parts[n][1]
			eng := freeride.New(cfg.PerNode)
			results[n], errs[n] = eng.RunContext(ctx, offsetSpec(spec, lo), nodeSource(src, lo, hi))
		}(n)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Global combination over the transport.
	objects := make([]*robj.Object, cfg.Nodes)
	for n, r := range results {
		objects[n] = r.Object
	}
	var (
		combined *robj.Object
		moved    int64
		rounds   int
		err      error
	)
	switch cfg.Transport {
	case TCP:
		combined, moved, rounds, err = combineTCP(objects, cfg.Combine, cfg)
	default:
		combined, moved, rounds, err = combineInProcess(objects, cfg.Combine)
	}
	if err != nil {
		return nil, err
	}

	res := &Result{Object: combined}
	for n := range parts {
		res.Stats.NodeRows = append(res.Stats.NodeRows, parts[n][1]-parts[n][0])
	}
	res.Stats.BytesMoved = moved
	res.Stats.Rounds = rounds

	if finalize != nil {
		fr := &freeride.Result{Object: combined}
		if err := finalize(fr); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// combineInProcess folds the objects without serialization.
func combineInProcess(objects []*robj.Object, algo CombineAlgo) (*robj.Object, int64, int, error) {
	switch algo {
	case Tree:
		rounds := 0
		live := objects
		for len(live) > 1 {
			rounds++
			next := make([]*robj.Object, 0, (len(live)+1)/2)
			var wg sync.WaitGroup
			errs := make([]error, len(live)/2)
			for i := 0; i+1 < len(live); i += 2 {
				next = append(next, live[i])
				wg.Add(1)
				go func(slot int, dst, src *robj.Object) {
					defer wg.Done()
					errs[slot] = dst.CombineFrom(src)
				}(i/2, live[i], live[i+1])
			}
			if len(live)%2 == 1 {
				next = append(next, live[len(live)-1])
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, 0, 0, err
				}
			}
			live = next
		}
		return live[0], 0, rounds, nil
	default: // AllToOne
		dst := objects[0]
		for _, o := range objects[1:] {
			if err := dst.CombineFrom(o); err != nil {
				return nil, 0, 0, err
			}
		}
		rounds := 0
		if len(objects) > 1 {
			rounds = 1
		}
		return dst, 0, rounds, nil
	}
}
