package cluster

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// histSpec counts rows per integer bucket (column 0) and records the global
// row index sum per bucket in a second cell — so tests catch wrong Begin
// offsets across nodes.
func histSpec(buckets int) freeride.Spec {
	return freeride.Spec{
		Object: freeride.ObjectSpec{Groups: buckets, Elems: 2, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				b := int(a.Row(i)[0])
				a.Accumulate(b, 0, 1)
				a.Accumulate(b, 1, float64(a.Begin+i))
			}
			return nil
		},
	}
}

func bucketData(n, buckets int) *dataset.Matrix {
	m := dataset.NewMatrix(n, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % buckets)
	}
	return m
}

// expected computes the reference histogram with global index sums.
func expected(m *dataset.Matrix, buckets int) []float64 {
	out := make([]float64, buckets*2)
	for i := 0; i < m.Rows; i++ {
		b := int(m.At(i, 0))
		out[b*2]++
		out[b*2+1] += float64(i)
	}
	return out
}

func TestClusterMatchesSingleNode(t *testing.T) {
	const n, buckets = 5000, 7
	m := bucketData(n, buckets)
	want := expected(m, buckets)
	for _, transport := range []Transport{InProcess, TCP} {
		for _, algo := range []CombineAlgo{AllToOne, Tree} {
			for _, nodes := range []int{1, 2, 3, 4, 8} {
				c := New(Config{
					Nodes:     nodes,
					PerNode:   freeride.Config{Threads: 2, SplitRows: 64},
					Transport: transport,
					Combine:   algo,
				})
				res, err := c.Run(histSpec(buckets), dataset.NewMemorySource(m))
				if err != nil {
					t.Fatalf("%v/%v/nodes=%d: %v", transport, algo, nodes, err)
				}
				got := res.Object.Snapshot()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v/%v/nodes=%d: cell %d = %v, want %v",
							transport, algo, nodes, i, got[i], want[i])
					}
				}
				// Partition stats must cover the dataset exactly.
				total := 0
				for _, r := range res.Stats.NodeRows {
					total += r
				}
				if total != n || len(res.Stats.NodeRows) != nodes {
					t.Fatalf("%v/%v/nodes=%d: partition %v", transport, algo, nodes, res.Stats.NodeRows)
				}
				if transport == TCP && nodes > 1 && res.Stats.BytesMoved == 0 {
					t.Fatalf("TCP with %d nodes moved no bytes", nodes)
				}
				if transport == InProcess && res.Stats.BytesMoved != 0 {
					t.Fatal("in-process transport should move no bytes")
				}
			}
		}
	}
}

func TestClusterRunFileMatchesMemory(t *testing.T) {
	const n, buckets = 3000, 5
	m := bucketData(n, buckets)
	want := expected(m, buckets)
	dir := t.TempDir()
	for _, layout := range []dataset.Layout{dataset.RowMajor, dataset.ColMajor} {
		path := filepath.Join(dir, layout.String()+".frds")
		if err := dataset.WriteFileLayout(path, m, layout); err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 3} {
			c := New(Config{Nodes: nodes, PerNode: freeride.Config{Threads: 2, SplitRows: 128}})
			res, err := c.RunFile(histSpec(buckets), path)
			if err != nil {
				t.Fatalf("%v/nodes=%d: %v", layout, nodes, err)
			}
			got := res.Object.Snapshot()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v/nodes=%d: cell %d = %v, want %v", layout, nodes, i, got[i], want[i])
				}
			}
			if err := c.Release(res); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestClusterRunFileMissing(t *testing.T) {
	c := New(Config{Nodes: 2})
	defer c.Close()
	if _, err := c.RunFile(histSpec(2), filepath.Join(t.TempDir(), "nope.frds")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestClusterRounds(t *testing.T) {
	m := bucketData(100, 2)
	cases := []struct {
		nodes  int
		algo   CombineAlgo
		rounds int
	}{
		{1, AllToOne, 0},
		{2, AllToOne, 1},
		{8, AllToOne, 1},
		{1, Tree, 0},
		{2, Tree, 1},
		{4, Tree, 2},
		{5, Tree, 3},
		{8, Tree, 3},
	}
	for _, c := range cases {
		cl := New(Config{Nodes: c.nodes, PerNode: freeride.Config{Threads: 1}, Combine: c.algo})
		res, err := cl.Run(histSpec(2), dataset.NewMemorySource(m))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds != c.rounds {
			t.Fatalf("nodes=%d algo=%v: rounds = %d, want %d", c.nodes, c.algo, res.Stats.Rounds, c.rounds)
		}
	}
}

func TestClusterFinalizeRunsOnceOnCombined(t *testing.T) {
	m := bucketData(1000, 4)
	calls := 0
	spec := histSpec(4)
	spec.Finalize = func(r *freeride.Result) error {
		calls++
		if got := r.Object.Get(0, 0); got != 250 {
			t.Errorf("finalize saw count %v, want 250", got)
		}
		return nil
	}
	c := New(Config{Nodes: 4, PerNode: freeride.Config{Threads: 1}})
	if _, err := c.Run(spec, dataset.NewMemorySource(m)); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("finalize ran %d times", calls)
	}
	// Finalize errors propagate.
	spec.Finalize = func(r *freeride.Result) error { return errors.New("final boom") }
	if _, err := c.Run(spec, dataset.NewMemorySource(m)); err == nil {
		t.Fatal("finalize error should propagate")
	}
}

func TestClusterValidation(t *testing.T) {
	m := bucketData(10, 2)
	c := New(Config{Nodes: 2})
	if _, err := c.Run(freeride.Spec{}, dataset.NewMemorySource(m)); !errors.Is(err, freeride.ErrNoReduction) {
		t.Fatalf("want ErrNoReduction, got %v", err)
	}
	if _, err := c.Run(histSpec(2), nil); err == nil {
		t.Fatal("nil source: want error")
	}
	spec := histSpec(2)
	spec.LocalInit = func() any { return 0 }
	spec.LocalCombine = func(a, b any) any { return a }
	if _, err := c.Run(spec, dataset.NewMemorySource(m)); err == nil {
		t.Fatal("LocalInit across nodes: want error")
	}
	// Reduction errors on any node propagate.
	boom := errors.New("node boom")
	spec = freeride.Spec{
		Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			if a.Begin >= 5 {
				return boom
			}
			return nil
		},
	}
	if _, err := c.Run(spec, dataset.NewMemorySource(m)); !errors.Is(err, boom) {
		t.Fatalf("want node error, got %v", err)
	}
}

func TestClusterDefaults(t *testing.T) {
	c := New(Config{})
	if c.Config().Nodes != 2 {
		t.Fatalf("default nodes = %d", c.Config().Nodes)
	}
	if InProcess.String() != "in-process" || TCP.String() != "tcp" {
		t.Fatal("transport strings")
	}
	if AllToOne.String() != "all-to-one" || Tree.String() != "tree" {
		t.Fatal("combine strings")
	}
	if Transport(9).String() != "transport(9)" || CombineAlgo(9).String() != "combine(9)" {
		t.Fatal("unknown enum strings")
	}
}

func TestPartition(t *testing.T) {
	parts := partition(10, 3)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("partition = %v", parts)
		}
	}
	// Fewer rows than nodes: some nodes get empty ranges.
	parts = partition(2, 4)
	total := 0
	for _, p := range parts {
		total += p[1] - p[0]
	}
	if total != 2 {
		t.Fatalf("partition(2,4) covers %d rows", total)
	}
}

func TestClusterEmptyNodesTolerated(t *testing.T) {
	// 3 rows over 8 nodes: five nodes process nothing.
	m := bucketData(3, 2)
	c := New(Config{Nodes: 8, PerNode: freeride.Config{Threads: 2}, Transport: TCP})
	res, err := c.Run(histSpec(2), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Object.Get(0, 0) + res.Object.Get(1, 0); got != 3 {
		t.Fatalf("total count = %v", got)
	}
}

// Property: cluster results equal single-node results for arbitrary node
// counts, transports, and algorithms (integer data keeps sums exact).
func TestPropertyClusterEqualsSingleNode(t *testing.T) {
	f := func(seed int64, nRaw uint16, nodesRaw, tRaw, aRaw uint8) bool {
		n := int(nRaw%2000) + 1
		nodes := int(nodesRaw%8) + 1
		transport := Transport(int(tRaw) % 2)
		algo := CombineAlgo(int(aRaw) % 2)
		rng := rand.New(rand.NewSource(seed))
		m := dataset.NewMatrix(n, 1)
		for i := range m.Data {
			m.Data[i] = float64(rng.Intn(5))
		}
		want := expected(m, 5)
		c := New(Config{
			Nodes:     nodes,
			PerNode:   freeride.Config{Threads: 2, SplitRows: 32},
			Transport: transport,
			Combine:   algo,
		})
		res, err := c.Run(histSpec(5), dataset.NewMemorySource(m))
		if err != nil {
			return false
		}
		got := res.Object.Snapshot()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(81))}); err != nil {
		t.Fatal(err)
	}
}
