package cluster

import (
	"errors"
	"testing"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
)

// grabMesh reads the cluster's current mesh pointer under its lock.
func grabMesh(t *testing.T, c *Cluster) *tcpMesh {
	t.Helper()
	c.meshMu.Lock()
	defer c.meshMu.Unlock()
	if c.mesh == nil {
		t.Fatal("cluster has no established mesh")
	}
	return c.mesh
}

// TestMeshFaultBreaksAndRebuilds injects a connection failure underneath an
// established TCP mesh: with one root-side connection killed, the next
// pass's jobAnnounce frame fails to encode. The regression this pins: that
// failure must latch the mesh broken and tear it down, so the pass after it
// re-dials a fresh fabric and succeeds — not inherit a half-written gob
// stream that decodes garbage.
func TestMeshFaultBreaksAndRebuilds(t *testing.T) {
	const buckets = 8
	m := bucketData(2000, buckets)
	want := expected(m, buckets)
	c := New(Config{
		Nodes:     3,
		PerNode:   freeride.Config{Threads: 2},
		Transport: TCP,
		IOTimeout: 2 * time.Second,
	})
	defer c.Close()
	src := dataset.NewMemorySource(m)

	check := func(pass string, res *Result) {
		t.Helper()
		for b := 0; b < buckets; b++ {
			if res.Object.Get(b, 0) != want[b*2] || res.Object.Get(b, 1) != want[b*2+1] {
				t.Fatalf("%s pass bucket %d diverges from single-node reference", pass, b)
			}
		}
		c.Release(res)
	}

	res, err := c.Run(histSpec(buckets), src)
	if err != nil {
		t.Fatalf("healthy pass: %v", err)
	}
	check("healthy", res)

	// Kill one root-side connection out from under the mesh. The next
	// announce's encode to node 1 hits a closed conn mid-pass.
	first := grabMesh(t, c)
	breaksBefore := obs.Default.Value("cluster_mesh_breaks_total")
	dialedBefore := obs.Default.Value("cluster_conns_dialed_total")
	first.recv[1].Close()

	if _, err := c.Run(histSpec(buckets), src); err == nil {
		t.Fatal("pass over a killed connection reported success")
	}
	if !first.broken.Load() {
		t.Fatal("failed announce did not latch the mesh broken")
	}
	if got := obs.Default.Value("cluster_mesh_breaks_total") - breaksBefore; got != 1 {
		t.Fatalf("cluster_mesh_breaks_total moved by %d, want 1", got)
	}

	// The pass after the fault rebuilds the fabric from scratch and produces
	// the reference answer again.
	res, err = c.Run(histSpec(buckets), src)
	if err != nil {
		t.Fatalf("pass after fault: %v", err)
	}
	check("rebuilt", res)
	if second := grabMesh(t, c); second == first {
		t.Fatal("cluster reused the broken mesh instead of rebuilding")
	}
	if extra := obs.Default.Value("cluster_conns_dialed_total") - dialedBefore; extra != int64(c.cfg.Nodes-1) {
		t.Fatalf("rebuild dialed %d connections, want %d", extra, c.cfg.Nodes-1)
	}
}

// TestBrokenMeshRefusesReuse: once latched broken, a mesh fails every
// further exchange fast with errMeshBroken (never touching its poisoned gob
// streams), and ensureMesh discards it even when the faulting pass forgot to
// call dropMesh.
func TestBrokenMeshRefusesReuse(t *testing.T) {
	const buckets = 4
	m := bucketData(400, buckets)
	c := New(Config{Nodes: 2, PerNode: freeride.Config{Threads: 1}, Transport: TCP})
	defer c.Close()
	if res, err := c.Run(histSpec(buckets), dataset.NewMemorySource(m)); err != nil {
		t.Fatal(err)
	} else {
		c.Release(res)
	}

	mesh := grabMesh(t, c)
	mesh.markBroken()
	if _, err := mesh.announce(obs.NextJobID(), c.cfg); !errors.Is(err, errMeshBroken) {
		t.Fatalf("announce on broken mesh returned %v, want errMeshBroken", err)
	}
	if _, _, _, _, err := mesh.combine(nil, AllToOne, c.cfg); !errors.Is(err, errMeshBroken) {
		t.Fatalf("combine on broken mesh returned %v, want errMeshBroken", err)
	}

	// Simulate the caller missing dropMesh: ensureMesh must still refuse to
	// hand the broken mesh back.
	rebuilt, err := c.ensureMesh()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == mesh {
		t.Fatal("ensureMesh returned the broken mesh")
	}
	if rebuilt.broken.Load() {
		t.Fatal("rebuilt mesh started out broken")
	}
}
