package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
)

func TestClusterRunContextCancelled(t *testing.T) {
	// Every split read takes 10ms; with 2 nodes × 2 threads over 200 splits
	// the run would take seconds. Cancellation must cut it short on every
	// node at once.
	m := bucketData(2000, 2)
	slow := dataset.NewFaultSource(dataset.NewMemorySource(m),
		dataset.FaultConfig{Latency: 10 * time.Millisecond})
	c := New(Config{Nodes: 2, PerNode: freeride.Config{Threads: 2, SplitRows: 10}})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := c.RunContext(ctx, histSpec(2), slow)
	wall := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if wall > 500*time.Millisecond {
		t.Fatalf("cancelled cluster run took %v, want well under a second", wall)
	}
}

func TestClusterRunContextPreCancelled(t *testing.T) {
	m := bucketData(100, 2)
	c := New(Config{Nodes: 2, PerNode: freeride.Config{Threads: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunContext(ctx, histSpec(2), dataset.NewMemorySource(m)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestClusterRecoversThroughRetrySource(t *testing.T) {
	// A cluster run over a fault-injected source behind the retry layer must
	// produce the same histogram as the clean run, including over TCP.
	const n, buckets = 3000, 5
	m := bucketData(n, buckets)
	want := expected(m, buckets)
	faulty := dataset.NewRetrySource(
		dataset.NewFaultSource(dataset.NewMemorySource(m),
			dataset.FaultConfig{Rate: 0.3, Seed: 11, FailCount: 2}),
		4, 100*time.Microsecond)
	c := New(Config{Nodes: 3, PerNode: freeride.Config{Threads: 2, SplitRows: 64}, Transport: TCP})
	res, err := c.Run(histSpec(buckets), faulty)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Object.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Without the retry layer the injected faults surface.
	bare := dataset.NewFaultSource(dataset.NewMemorySource(m),
		dataset.FaultConfig{Rate: 0.3, Seed: 11, FailCount: 2})
	if _, err := c.Run(histSpec(buckets), bare); !errors.Is(err, dataset.ErrInjectedFault) {
		t.Fatalf("want injected fault to surface, got %v", err)
	}
}

func TestClusterTimeoutDefaults(t *testing.T) {
	cfg := New(Config{}).Config()
	if cfg.DialTimeout != 2*time.Second || cfg.DialRetries != 2 || cfg.IOTimeout != 10*time.Second {
		t.Fatalf("defaults: %+v", cfg)
	}
	cfg = New(Config{DialRetries: -1}).Config()
	if cfg.DialRetries != 0 {
		t.Fatalf("negative DialRetries should mean none, got %d", cfg.DialRetries)
	}
	cfg = New(Config{DialTimeout: time.Second, DialRetries: 5, IOTimeout: 3 * time.Second}).Config()
	if cfg.DialTimeout != time.Second || cfg.DialRetries != 5 || cfg.IOTimeout != 3*time.Second {
		t.Fatalf("explicit values overridden: %+v", cfg)
	}
}

func TestDialRetryExhaustsBudget(t *testing.T) {
	// Port 1 is unassigned and refuses connections immediately; the dial
	// must be retried DialRetries times and then fail.
	cfg := Config{DialTimeout: 100 * time.Millisecond, DialRetries: 2}
	before := obs.Default.Value("cluster_dial_retries_total")
	if _, err := dialRetry("127.0.0.1:1", cfg); err == nil {
		t.Fatal("dial to a closed port should fail")
	}
	if d := obs.Default.Value("cluster_dial_retries_total") - before; d != 2 {
		t.Fatalf("cluster_dial_retries_total delta = %d, want 2", d)
	}
}

// stubNetErr implements net.Error for the timeout classifier.
type stubNetErr struct{ timeout bool }

func (e stubNetErr) Error() string   { return "stub" }
func (e stubNetErr) Timeout() bool   { return e.timeout }
func (e stubNetErr) Temporary() bool { return false }

func TestIsTimeout(t *testing.T) {
	if !isTimeout(stubNetErr{timeout: true}) {
		t.Fatal("timeout net.Error not classified")
	}
	if isTimeout(stubNetErr{timeout: false}) || isTimeout(errors.New("plain")) {
		t.Fatal("non-timeout errors misclassified")
	}
}
