package cluster

import (
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// TestClusterTCPConnReuse: the TCP mesh dials once and reuses its framed
// connections across passes — the second and third Run add zero dials and
// bump the reuse counter instead, and every pass produces the single-node
// answer.
func TestClusterTCPConnReuse(t *testing.T) {
	const buckets = 8
	m := bucketData(4000, buckets)
	want := expected(m, buckets)
	c := New(Config{Nodes: 3, PerNode: freeride.Config{Threads: 2}, Transport: TCP})
	defer c.Close()

	dialedBefore := obs.Default.Value("cluster_conns_dialed_total")
	reusedBefore := obs.Default.Value("cluster_conn_reuses_total")
	var dialedAfterFirst int64
	for pass := 0; pass < 3; pass++ {
		res, err := c.Run(histSpec(buckets), dataset.NewMemorySource(m))
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for b := 0; b < buckets; b++ {
			if res.Object.Get(b, 0) != want[b*2] || res.Object.Get(b, 1) != want[b*2+1] {
				t.Fatalf("pass %d bucket %d diverges from single-node reference", pass, b)
			}
		}
		c.Release(res)
		if pass == 0 {
			dialedAfterFirst = obs.Default.Value("cluster_conns_dialed_total")
			if dialedAfterFirst == dialedBefore {
				t.Fatal("first TCP pass dialed no connections")
			}
		}
	}
	if extra := obs.Default.Value("cluster_conns_dialed_total") - dialedAfterFirst; extra != 0 {
		t.Fatalf("later passes dialed %d new connections, want 0 (mesh should persist)", extra)
	}
	if reuses := obs.Default.Value("cluster_conn_reuses_total") - reusedBefore; reuses == 0 {
		t.Fatal("conn reuse counter never moved across repeated passes")
	}
}

// TestClusterClosedRejectsWork: Close is idempotent and a closed cluster
// refuses further Runs with ErrClusterClosed.
func TestClusterClosedRejectsWork(t *testing.T) {
	m := bucketData(500, 4)
	c := New(Config{Nodes: 2, PerNode: freeride.Config{Threads: 1}})
	if _, err := c.Run(histSpec(4), dataset.NewMemorySource(m)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Run(histSpec(4), dataset.NewMemorySource(m)); err != ErrClusterClosed {
		t.Fatalf("Run after Close = %v, want ErrClusterClosed", err)
	}
}

// TestClusterEmptySourceIdentity: a zero-row source through the full
// node-partition + combine path yields an identity-valued result on every
// transport.
func TestClusterEmptySourceIdentity(t *testing.T) {
	empty := dataset.NewMemorySource(dataset.NewMatrix(0, 1))
	for _, tr := range []Transport{InProcess, TCP} {
		c := New(Config{Nodes: 3, PerNode: freeride.Config{Threads: 2}, Transport: tr})
		spec := freeride.Spec{
			Object: freeride.ObjectSpec{Groups: 3, Elems: 2, Op: robj.OpAdd},
			Reduction: func(a *freeride.ReductionArgs) error {
				t.Error("reduction called on empty source")
				return nil
			},
		}
		res, err := c.Run(spec, empty)
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		for g := 0; g < 3; g++ {
			for e := 0; e < 2; e++ {
				if v := res.Object.Get(g, e); v != 0 {
					t.Fatalf("%v: cell (%d,%d) = %v, want identity 0", tr, g, e, v)
				}
			}
		}
		c.Close()
	}
}

// TestClusterReleaseRecyclesCombined: releasing a combined result lets the
// next pass reuse the same reduction object through node 0's session pool.
func TestClusterReleaseRecyclesCombined(t *testing.T) {
	m := bucketData(1000, 4)
	c := New(Config{Nodes: 2, PerNode: freeride.Config{Threads: 2}})
	defer c.Close()
	res1, err := c.Run(histSpec(4), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	first := res1.Object
	c.Release(res1)
	if res1.Object != nil {
		t.Fatal("Release left res.Object set")
	}
	res2, err := c.Run(histSpec(4), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Object != first {
		t.Fatal("second pass did not reuse the released combined object")
	}
	want := expected(m, 4)
	for b := 0; b < 4; b++ {
		if res2.Object.Get(b, 0) != want[b*2] {
			t.Fatalf("recycled pass bucket %d wrong", b)
		}
	}
}
