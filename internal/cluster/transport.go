package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// Transport robustness and session counters: dial attempts that had to be
// retried, exchanges that timed out against the per-call deadline, mesh
// connections dialed, and combines served over already-established
// connections (dialed vs reused quantifies what the persistent mesh saves).
var (
	mDialRetries = obs.Default.Counter("cluster_dial_retries_total",
		"TCP dials retried during global combination")
	mIOTimeouts = obs.Default.Counter("cluster_io_timeouts_total",
		"global-combination exchanges that hit the per-call deadline")
	mConnsDialed = obs.Default.Counter("cluster_conns_dialed_total",
		"TCP connections dialed for the global-combination mesh")
	mConnReuses = obs.Default.Counter("cluster_conn_reuses_total",
		"global-combination exchanges served over an already-established connection")
	mMeshBroken = obs.Default.Counter("cluster_mesh_breaks_total",
		"mesh teardowns forced by a failed announce/combine frame (half-written gob streams)")
)

// dialRetry dials addr with the configured per-attempt timeout, retrying
// with exponential backoff up to cfg.DialRetries extra attempts.
func dialRetry(addr string, cfg Config) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	var err error
	for attempt := 0; ; attempt++ {
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err == nil {
			return conn, nil
		}
		if attempt >= cfg.DialRetries {
			return nil, err
		}
		mDialRetries.Inc()
		time.Sleep(backoff)
		backoff *= 2
	}
}

// isTimeout reports whether err is a network timeout (deadline exceeded).
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// meshHello identifies a sender connection to the root when the mesh is
// established; it is the first frame on each connection's gob stream.
type meshHello struct {
	Node int
}

// jobAnnounce is the root→node frame that propagates the coordinator's job
// id (the distributed trace context) to every node before a pass: each node
// engine pass runs under the announced id, so the spans and counter deltas
// it ships back attribute to the coordinator's job. It travels the reverse
// gob direction of the mesh connections (each TCP connection carries two
// independent gob streams, one per direction).
type jobAnnounce struct {
	Job uint64
}

// wireObject is the gob wire format for one node's pass outcome: the merged
// reduction object plus the pass's observability payload — the node engine's
// span records and exact per-job counter deltas — so the coordinator can
// assemble a node-attributed timeline and per-node metric view without any
// side channel.
type wireObject struct {
	Node   int
	Job    uint64
	Groups int
	Elems  int
	Op     robj.Op
	Cells  []float64
	Spans  []obs.SpanRecord
	Deltas []obs.MetricDelta
}

// nodePayload is one node's contribution to a global combination: the
// object to fold plus the pass's shipped observability payload.
type nodePayload struct {
	Obj    *robj.Object
	Job    obs.JobID
	Spans  []obs.SpanRecord
	Deltas []obs.MetricDelta
}

// countingConn wraps a connection and counts the bytes written through it.
type countingConn struct {
	net.Conn
	n *int64
	m *sync.Mutex
}

// Write implements io.Writer with byte accounting.
func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.Lock()
	*c.n += int64(n)
	c.m.Unlock()
	return n, err
}

// tcpMesh is the persistent global-combination fabric for a TCP cluster
// session: node 0 listens once, every other node dials in once, and the
// resulting connections — with their gob streams, so type descriptors cross
// the wire a single time — are reused by every combination the session
// performs. The one-shot engine re-listened and re-dialed per pass; for
// iterative algorithms that connection setup dominated small-object
// combines. Each exchange still gets a fresh cfg.IOTimeout deadline, so a
// wedged peer fails the pass promptly; a failed combine tears the mesh down
// and the next pass re-dials from scratch.
type tcpMesh struct {
	n int

	// mu serializes combines: the per-connection gob streams carry one
	// frame per pass, so two concurrent combines must not interleave.
	mu   sync.Mutex
	used bool

	// broken latches on the first announce/combine frame error. A gob stream
	// that failed mid-frame is half-written: reusing it would desynchronize
	// the decoder on the other end and poison every later pass with opaque
	// "unexpected EOF"/type-mismatch errors far from the original fault. The
	// mesh therefore refuses all further exchanges once broken, so even a
	// caller that forgets to discard it gets a clean, attributable error and
	// ensureMesh rebuilds the fabric on the next pass.
	broken atomic.Bool

	// Sender side (simulated nodes 1..n-1) and root side of each
	// connection, indexed by node id; slot 0 is unused.
	send []net.Conn
	encs []*gob.Encoder
	recv []net.Conn
	decs []*gob.Decoder

	// Reverse direction (root → node), used by the pre-pass job announce:
	// the root encodes on its end of each connection, the node decodes on
	// its own. Separate gob streams from the combine direction, so the two
	// never share descriptor state.
	rootEncs []*gob.Encoder
	nodeDecs []*gob.Decoder

	moved   int64
	movedMu sync.Mutex
}

// newTCPMesh establishes the session's combination fabric: a loopback
// listener on the root, one dial per non-root node (with the configured
// retry budget), and a hello frame per connection so the root maps
// connections to node ids regardless of accept order. The listener closes
// once the mesh is fully connected — a lost connection is repaired by
// rebuilding the whole mesh, not by re-accepting.
func newTCPMesh(n int, cfg Config) (*tcpMesh, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	m := &tcpMesh{
		n:        n,
		send:     make([]net.Conn, n),
		encs:     make([]*gob.Encoder, n),
		recv:     make([]net.Conn, n),
		decs:     make([]*gob.Decoder, n),
		rootEncs: make([]*gob.Encoder, n),
		nodeDecs: make([]*gob.Decoder, n),
	}

	var dialers sync.WaitGroup
	dialErrs := make([]error, n)
	for node := 1; node < n; node++ {
		dialers.Add(1)
		go func(node int) {
			defer dialers.Done()
			conn, err := dialRetry(addr, cfg)
			if err != nil {
				dialErrs[node] = fmt.Errorf("cluster: node %d dial: %w", node, err)
				return
			}
			mConnsDialed.Inc()
			conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
			enc := gob.NewEncoder(countingConn{Conn: conn, n: &m.moved, m: &m.movedMu})
			if err := enc.Encode(meshHello{Node: node}); err != nil {
				conn.Close()
				dialErrs[node] = fmt.Errorf("cluster: node %d hello: %w", node, err)
				return
			}
			conn.SetDeadline(time.Time{})
			m.send[node] = conn
			m.encs[node] = enc
		}(node)
	}

	var acceptErr error
	deadline := time.Now().Add(cfg.IOTimeout)
	for i := 1; i < n; i++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			if isTimeout(err) {
				mIOTimeouts.Inc()
			}
			acceptErr = fmt.Errorf("cluster: accept: %w", err)
			break
		}
		conn.SetDeadline(deadline)
		dec := gob.NewDecoder(conn)
		var hello meshHello
		if err := dec.Decode(&hello); err != nil {
			conn.Close()
			acceptErr = fmt.Errorf("cluster: hello decode: %w", err)
			break
		}
		if hello.Node < 1 || hello.Node >= n || m.recv[hello.Node] != nil {
			conn.Close()
			acceptErr = fmt.Errorf("cluster: unexpected hello from node %d", hello.Node)
			break
		}
		conn.SetDeadline(time.Time{})
		m.recv[hello.Node] = conn
		m.decs[hello.Node] = dec
	}
	dialers.Wait()
	if acceptErr == nil {
		for _, err := range dialErrs {
			if err != nil {
				acceptErr = err
				break
			}
		}
	}
	if acceptErr != nil {
		m.close()
		return nil, acceptErr
	}
	for node := 1; node < n; node++ {
		m.rootEncs[node] = gob.NewEncoder(m.recv[node])
		m.nodeDecs[node] = gob.NewDecoder(m.send[node])
	}
	return m, nil
}

// errMeshBroken reports an exchange attempted on a mesh whose gob streams
// were poisoned by an earlier failed frame. It always signals a caller bug
// (the pass that hit the original fault should have discarded the mesh), but
// it fails that pass cleanly instead of letting a desynchronized gob stream
// produce an unrelated decode error several passes later.
var errMeshBroken = fmt.Errorf("cluster: mesh broken by an earlier failed exchange; discard and re-establish")

// markBroken latches the mesh broken after a failed announce/combine frame.
func (m *tcpMesh) markBroken() {
	if m.broken.CompareAndSwap(false, true) {
		mMeshBroken.Inc()
	}
}

// announce propagates the coordinator's job id to every node over the
// reverse gob direction and returns the id each node actually received (the
// simulated node side reads its own connection, so the context genuinely
// crosses the wire). An error leaves the reverse streams in an undefined
// state: the mesh marks itself broken so it can never be reused, and the
// caller must discard it (dropMesh) so the next pass re-dials.
func (m *tcpMesh) announce(job obs.JobID, cfg Config) ([]obs.JobID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken.Load() {
		return nil, errMeshBroken
	}
	n := m.n
	deadline := time.Now().Add(cfg.IOTimeout)
	got := make([]obs.JobID, n)
	got[0] = job

	var senders sync.WaitGroup
	sendErrs := make([]error, n)
	for node := 1; node < n; node++ {
		senders.Add(1)
		go func(node int) {
			defer senders.Done()
			m.recv[node].SetDeadline(deadline)
			if err := m.rootEncs[node].Encode(jobAnnounce{Job: uint64(job)}); err != nil {
				if isTimeout(err) {
					mIOTimeouts.Inc()
				}
				sendErrs[node] = fmt.Errorf("cluster: node %d announce send: %w", node, err)
				return
			}
			m.recv[node].SetDeadline(time.Time{})
		}(node)
	}
	recvErrs := make([]error, n)
	var receivers sync.WaitGroup
	for node := 1; node < n; node++ {
		receivers.Add(1)
		go func(node int) {
			defer receivers.Done()
			m.send[node].SetDeadline(deadline)
			var a jobAnnounce
			if err := m.nodeDecs[node].Decode(&a); err != nil {
				if isTimeout(err) {
					mIOTimeouts.Inc()
				}
				recvErrs[node] = fmt.Errorf("cluster: node %d announce receive: %w", node, err)
				return
			}
			m.send[node].SetDeadline(time.Time{})
			got[node] = obs.JobID(a.Job)
		}(node)
	}
	receivers.Wait()
	senders.Wait()
	for node := 1; node < n; node++ {
		if recvErrs[node] != nil {
			m.markBroken()
			return nil, recvErrs[node]
		}
		if sendErrs[node] != nil {
			m.markBroken()
			return nil, sendErrs[node]
		}
	}
	return got, nil
}

// close tears down every mesh connection. Safe on a partially built mesh.
func (m *tcpMesh) close() {
	for _, conn := range m.send {
		if conn != nil {
			conn.Close()
		}
	}
	for _, conn := range m.recv {
		if conn != nil {
			conn.Close()
		}
	}
}

// combine performs one global combination over the established mesh: every
// non-root node streams its serialized object to the root concurrently, and
// the root folds the received cells into objects[0] in node order, so the
// floating-point result is deterministic regardless of arrival order (the
// tree algorithm moves the same non-root objects over the wire — the rounds
// differ only in who folds, so the simulation folds at the root and reports
// ⌈log2 N⌉ rounds). An error leaves the gob streams in an undefined state:
// the mesh marks itself broken so it can never be reused, and the caller
// must discard it (dropMesh) so the next pass re-dials.
func (m *tcpMesh) combine(payloads []nodePayload, algo CombineAlgo, cfg Config) (*robj.Object, []*wireObject, int64, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken.Load() {
		return nil, nil, 0, 0, errMeshBroken
	}
	n := m.n
	if m.used {
		mConnReuses.Add(int64(n - 1))
	}
	m.used = true

	m.movedMu.Lock()
	movedStart := m.moved
	m.movedMu.Unlock()
	deadline := time.Now().Add(cfg.IOTimeout)

	var senders sync.WaitGroup
	sendErrs := make([]error, n)
	for node := 1; node < n; node++ {
		senders.Add(1)
		go func(node int) {
			defer senders.Done()
			p := payloads[node]
			o := p.Obj
			m.send[node].SetDeadline(deadline)
			err := m.encs[node].Encode(wireObject{
				Node:   node,
				Job:    uint64(p.Job),
				Groups: o.Groups(),
				Elems:  o.ElemsPerGroup(),
				Op:     o.Op(),
				Cells:  o.Snapshot(),
				Spans:  p.Spans,
				Deltas: p.Deltas,
			})
			if err != nil {
				if isTimeout(err) {
					mIOTimeouts.Inc()
				}
				sendErrs[node] = fmt.Errorf("cluster: node %d send: %w", node, err)
				return
			}
			m.send[node].SetDeadline(time.Time{})
		}(node)
	}

	received := make([]*wireObject, n)
	recvErrs := make([]error, n)
	var receivers sync.WaitGroup
	for node := 1; node < n; node++ {
		receivers.Add(1)
		go func(node int) {
			defer receivers.Done()
			m.recv[node].SetDeadline(deadline)
			var w wireObject
			if err := m.decs[node].Decode(&w); err != nil {
				if isTimeout(err) {
					mIOTimeouts.Inc()
				}
				recvErrs[node] = fmt.Errorf("cluster: node %d receive: %w", node, err)
				return
			}
			if w.Node != node {
				recvErrs[node] = fmt.Errorf("cluster: connection for node %d carried object for node %d", node, w.Node)
				return
			}
			m.recv[node].SetDeadline(time.Time{})
			received[node] = &w
		}(node)
	}
	receivers.Wait()
	senders.Wait()
	for node := 1; node < n; node++ {
		if recvErrs[node] != nil {
			m.markBroken()
			return nil, nil, 0, 0, recvErrs[node]
		}
		if sendErrs[node] != nil {
			m.markBroken()
			return nil, nil, 0, 0, sendErrs[node]
		}
	}

	dst := payloads[0].Obj
	for node := 1; node < n; node++ {
		w := received[node]
		if w.Groups != dst.Groups() || w.Elems != dst.ElemsPerGroup() || w.Op != dst.Op() {
			return nil, nil, 0, 0, fmt.Errorf("cluster: node %d object shape/op mismatch", node)
		}
		if err := dst.CombineCells(w.Cells); err != nil {
			return nil, nil, 0, 0, fmt.Errorf("cluster: node %d: %w", node, err)
		}
	}

	m.movedMu.Lock()
	moved := m.moved - movedStart
	m.movedMu.Unlock()
	rounds := 1
	if algo == Tree {
		rounds = 0
		for span := 1; span < n; span *= 2 {
			rounds++
		}
	}
	return dst, received, moved, rounds, nil
}
