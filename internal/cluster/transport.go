package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// Transport robustness counters: dial attempts that had to be retried, and
// exchanges that timed out against the per-call deadline.
var (
	mDialRetries = obs.Default.Counter("cluster_dial_retries_total",
		"TCP dials retried during global combination")
	mIOTimeouts = obs.Default.Counter("cluster_io_timeouts_total",
		"global-combination exchanges that hit the per-call deadline")
)

// dialRetry dials addr with the configured per-attempt timeout, retrying
// with exponential backoff up to cfg.DialRetries extra attempts.
func dialRetry(addr string, cfg Config) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	var err error
	for attempt := 0; ; attempt++ {
		var conn net.Conn
		conn, err = net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err == nil {
			return conn, nil
		}
		if attempt >= cfg.DialRetries {
			return nil, err
		}
		mDialRetries.Inc()
		time.Sleep(backoff)
		backoff *= 2
	}
}

// isTimeout reports whether err is a network timeout (deadline exceeded).
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// wireObject is the gob wire format for a merged reduction object: enough
// to reconstruct and combine it on the receiving node.
type wireObject struct {
	Node   int
	Groups int
	Elems  int
	Op     robj.Op
	Cells  []float64
}

// countingConn wraps a connection and counts the bytes written through it.
type countingConn struct {
	net.Conn
	n *int64
	m *sync.Mutex
}

// Write implements io.Writer with byte accounting.
func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.m.Lock()
	*c.n += int64(n)
	c.m.Unlock()
	return n, err
}

// combineTCP performs the global combination over loopback TCP: node 0
// listens; every other node dials in and streams its serialized object;
// node 0 folds them in node order (the tree algorithm still moves every
// non-root object over the wire — the rounds differ only in who folds, so
// the simulation folds at the root and reports ⌈log2 N⌉ rounds).
//
// Every network call is bounded: dials get cfg.DialTimeout with
// cfg.DialRetries backed-off retries, and each accept/send/receive gets a
// cfg.IOTimeout deadline, so a dead peer fails the combination promptly
// instead of wedging it.
func combineTCP(objects []*robj.Object, algo CombineAlgo, cfg Config) (*robj.Object, int64, int, error) {
	n := len(objects)
	if n == 1 {
		return objects[0], 0, 0, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cluster: listen: %w", err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	var (
		moved   int64
		movedMu sync.Mutex
	)

	// Senders: nodes 1..n-1 dial the root and stream their object.
	var senders sync.WaitGroup
	sendErrs := make([]error, n)
	for node := 1; node < n; node++ {
		senders.Add(1)
		go func(node int) {
			defer senders.Done()
			conn, err := dialRetry(addr, cfg)
			if err != nil {
				sendErrs[node] = fmt.Errorf("cluster: node %d dial: %w", node, err)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(cfg.IOTimeout))
			o := objects[node]
			enc := gob.NewEncoder(countingConn{Conn: conn, n: &moved, m: &movedMu})
			err = enc.Encode(wireObject{
				Node:   node,
				Groups: o.Groups(),
				Elems:  o.ElemsPerGroup(),
				Op:     o.Op(),
				Cells:  o.Snapshot(),
			})
			if err != nil {
				if isTimeout(err) {
					mIOTimeouts.Inc()
				}
				sendErrs[node] = fmt.Errorf("cluster: node %d send: %w", node, err)
			}
		}(node)
	}

	// Root: accept n-1 connections, decode, fold in node order. Out-of-
	// order arrival is buffered so the combination order (and therefore
	// floating-point results) is deterministic.
	received := make([]*wireObject, n)
	var recvErr error
	var recvWg sync.WaitGroup
	var recvMu sync.Mutex
	deadline := time.Now().Add(cfg.IOTimeout)
	for i := 1; i < n; i++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			if isTimeout(err) {
				mIOTimeouts.Inc()
			}
			recvErr = fmt.Errorf("cluster: accept: %w", err)
			break
		}
		recvWg.Add(1)
		go func(conn net.Conn) {
			defer recvWg.Done()
			defer conn.Close()
			conn.SetDeadline(deadline)
			var w wireObject
			if err := gob.NewDecoder(conn).Decode(&w); err != nil {
				if isTimeout(err) {
					mIOTimeouts.Inc()
				}
				recvMu.Lock()
				if recvErr == nil {
					recvErr = fmt.Errorf("cluster: decode: %w", err)
				}
				recvMu.Unlock()
				return
			}
			recvMu.Lock()
			if w.Node < 1 || w.Node >= n || received[w.Node] != nil {
				if recvErr == nil {
					recvErr = fmt.Errorf("cluster: unexpected wire object for node %d", w.Node)
				}
			} else {
				received[w.Node] = &w
			}
			recvMu.Unlock()
		}(conn)
	}
	recvWg.Wait()
	senders.Wait()
	for _, err := range sendErrs {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	if recvErr != nil {
		return nil, 0, 0, recvErr
	}

	dst := objects[0]
	for node := 1; node < n; node++ {
		w := received[node]
		if w == nil {
			return nil, 0, 0, fmt.Errorf("cluster: missing object from node %d", node)
		}
		if w.Groups != dst.Groups() || w.Elems != dst.ElemsPerGroup() || w.Op != dst.Op() {
			return nil, 0, 0, fmt.Errorf("cluster: node %d object shape/op mismatch", node)
		}
		if err := dst.CombineCells(w.Cells); err != nil {
			return nil, 0, 0, fmt.Errorf("cluster: node %d: %w", node, err)
		}
	}

	rounds := 1
	if algo == Tree {
		rounds = 0
		for span := 1; span < n; span *= 2 {
			rounds++
		}
	}
	return dst, moved, rounds, nil
}
