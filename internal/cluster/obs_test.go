package cluster

import (
	"strconv"
	"strings"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

func obsSumSpec() freeride.Spec {
	return freeride.Spec{
		Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			var s float64
			for _, v := range a.Data {
				s += v
			}
			a.Accumulate(0, 0, s)
			return nil
		},
	}
}

// TestClusterObservabilityTCP is the tentpole acceptance test: a TCP cluster
// pass must mint one job id that crosses the mesh to every node, ship each
// node's spans and counter deltas back with its object, and leave the
// coordinator with a merged node-attributed timeline plus node-labeled
// counters on the process registry — all from one coordinator-side scrape.
func TestClusterObservabilityTCP(t *testing.T) {
	const nodes, rows = 3, 3000
	c := New(Config{
		Nodes:     nodes,
		PerNode:   freeride.Config{Threads: 2, SplitRows: 64},
		Transport: TCP,
	})
	defer c.Close()

	src := dataset.NewMemorySource(dataset.UniformMatrix(rows, 2, 7, 0, 1))
	res, err := c.Run(obsSumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats

	if st.Job == 0 {
		t.Fatal("cluster pass minted no job id")
	}
	if len(st.NodeDeltas) != nodes {
		t.Fatalf("NodeDeltas for %d nodes, want %d", len(st.NodeDeltas), nodes)
	}

	// Exactness: the shipped per-node row deltas must sum to the dataset —
	// nothing lost or double-counted crossing the mesh.
	var totalRows int64
	for n, ds := range st.NodeDeltas {
		var nodeRows int64
		for _, d := range ds {
			if d.Name == "freeride_rows_total" {
				nodeRows = d.Value
			}
		}
		if nodeRows != int64(st.NodeRows[n]) {
			t.Errorf("node %d shipped %d rows, partition says %d", n, nodeRows, st.NodeRows[n])
		}
		totalRows += nodeRows
	}
	if totalRows != rows {
		t.Errorf("shipped row deltas sum to %d, want %d", totalRows, rows)
	}

	// Merged timeline: coordinator spans stay node -1; every node must have
	// attributed spans, re-based within the coordinator's run span.
	if len(st.Spans) == 0 {
		t.Fatal("no merged timeline")
	}
	var rootDur int64
	perNode := map[int]int{}
	for _, sp := range st.Spans {
		perNode[sp.Node]++
		if sp.Name == "cluster-run" {
			rootDur = int64(sp.Dur)
		}
	}
	if perNode[-1] == 0 {
		t.Error("merged timeline has no coordinator spans")
	}
	for n := 0; n < nodes; n++ {
		if perNode[n] == 0 {
			t.Errorf("merged timeline has no spans attributed to node %d", n)
		}
	}
	if rootDur == 0 {
		t.Error("merged timeline is missing the coordinator root span")
	}
	ids := map[int64]bool{}
	for _, sp := range st.Spans {
		if ids[sp.ID] {
			t.Fatalf("merged timeline has duplicate span id %d", sp.ID)
		}
		ids[sp.ID] = true
		if sp.Parent != 0 && !ids[sp.Parent] && sp.Start > 0 {
			// Parents sort before children only when starts differ; a
			// missing parent id entirely is the real defect.
			found := false
			for _, q := range st.Spans {
				if q.ID == sp.Parent {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("span %d references missing parent %d", sp.ID, sp.Parent)
			}
		}
	}

	// Coordinator-side scrape: the node-labeled view must be on the process
	// registry under the cluster_node_ prefix.
	for n := 0; n < nodes; n++ {
		got := obs.Default.Value("cluster_node_freeride_rows_total", obs.Label{Key: "node", Value: strconv.Itoa(n)})
		if got < int64(st.NodeRows[n]) {
			t.Errorf("registry cluster_node_freeride_rows_total{node=%d} = %d, want >= %d", n, got, st.NodeRows[n])
		}
	}
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exposition := b.String()
	for _, want := range []string{
		`cluster_node_freeride_rows_total{node="0"}`,
		`cluster_node_freeride_rows_total{node="` + strconv.Itoa(nodes-1) + `"}`,
		"cluster_pass_duration_seconds_bucket",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}

	if err := c.Release(res); err != nil {
		t.Fatal(err)
	}
}

// TestClusterObservabilityInProcess checks the in-process transport produces
// the same shape of merged timeline and node deltas without a mesh.
func TestClusterObservabilityInProcess(t *testing.T) {
	const nodes, rows = 2, 1000
	c := New(Config{Nodes: nodes, PerNode: freeride.Config{Threads: 2}})
	defer c.Close()
	src := dataset.NewMemorySource(dataset.UniformMatrix(rows, 1, 3, 0, 1))
	res, err := c.Run(obsSumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(res)
	st := res.Stats
	if st.Job == 0 {
		t.Fatal("no job id")
	}
	var total int64
	for _, ds := range st.NodeDeltas {
		for _, d := range ds {
			if d.Name == "freeride_rows_total" {
				total += d.Value
			}
		}
	}
	if total != rows {
		t.Errorf("node deltas sum to %d rows, want %d", total, rows)
	}
	perNode := map[int]int{}
	for _, sp := range st.Spans {
		perNode[sp.Node]++
	}
	for n := 0; n < nodes; n++ {
		if perNode[n] == 0 {
			t.Errorf("no spans attributed to node %d", n)
		}
	}
}

// TestClusterEventLogCarriesJob checks the merged timeline lands in the
// process event log under the cluster's job id.
func TestClusterEventLogCarriesJob(t *testing.T) {
	c := New(Config{Nodes: 2, PerNode: freeride.Config{Threads: 1}})
	defer c.Close()
	src := dataset.NewMemorySource(dataset.UniformMatrix(200, 1, 5, 0, 1))
	res, err := c.Run(obsSumSpec(), src)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(res)

	var b strings.Builder
	if err := obs.Log.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	jobTag := `"job": ` + strconv.FormatUint(uint64(res.Stats.Job), 10)
	if !strings.Contains(b.String(), jobTag) {
		t.Fatalf("event log JSON is missing the cluster run's job id (%s)", jobTag)
	}
}
