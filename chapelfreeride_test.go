package chapelfreeride

import (
	"math"
	"testing"

	"chapelfreeride/internal/mapreduce"
)

// mapReduceCountSpec counts rows per integer key in column 0.
func mapReduceCountSpec() mapreduce.Spec[int, float64] {
	return mapreduce.Spec[int, float64]{
		Map: func(a *mapreduce.MapArgs, emit func(int, float64)) error {
			for i := 0; i < a.NumRows; i++ {
				emit(int(a.Row(i)[0]), 1)
			}
			return nil
		},
		Reduce: func(_ int, vals []float64) float64 {
			var s float64
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
}

// TestFacadeEndToEnd exercises the public API exactly as the package doc
// comment advertises: engine construction, a sum reduction, the Chapel
// reduction driver, and the translator.
func TestFacadeEndToEnd(t *testing.T) {
	// Direct FREERIDE use.
	m := UniformMatrix(1000, 2, 1, 0, 1)
	eng := NewEngine(EngineConfig{Threads: 4, SplitRows: 64})
	spec := Spec{
		Object: ObjectSpec{Groups: 1, Elems: 1, Op: OpAdd},
		Reduction: func(args *ReductionArgs) error {
			var s float64
			for _, v := range args.Data {
				s += v
			}
			args.Accumulate(0, 0, s)
			return nil
		},
	}
	res, err := eng.Run(spec, NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, v := range m.Data {
		want += v
	}
	if math.Abs(res.Object.Get(0, 0)-want) > 1e-6 {
		t.Fatalf("facade sum = %v, want %v", res.Object.Get(0, 0), want)
	}

	// Chapel-side reduction.
	arr := RealArray(3, 1, 4, 1, 5)
	if got := Reduce(NewMaxOp(), ChapelOver(arr), 2); got.(*ChapelReal).Val != 5 {
		t.Fatalf("chapel max = %v", got)
	}

	// Translator round trip.
	buf := Linearize(arr)
	back, err := Delinearize(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*ChapelArray).Len() != 5 {
		t.Fatal("delinearize length")
	}

	// Application layer.
	points, _ := GaussianMixture(200, 3, 4, 2)
	init := NewMatrix(4, 3)
	copy(init.Data, points.Data[:12])
	out, err := KMeans(VersionOpt2, points, init, KMeansConfig{
		K: 4, Iterations: 2, Engine: EngineConfig{Threads: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Centroids.Rows != 4 {
		t.Fatal("kmeans output shape")
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	if OptNone == Opt1 || Opt1 == Opt2 {
		t.Fatal("opt levels must be distinct")
	}
	strategies := []RObjStrategy{FullReplication, FullLocking, OptimizedFullLocking, FixedLocking, AtomicCAS}
	seen := map[RObjStrategy]bool{}
	for _, s := range strategies {
		if seen[s] {
			t.Fatal("duplicate strategy constant")
		}
		seen[s] = true
	}
	if VersionGenerated == VersionOpt2 || VersionManualFR == VersionMapReduce {
		t.Fatal("version constants must be distinct")
	}
}

func TestFacadeMapReduce(t *testing.T) {
	m := NewMatrix(100, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % 4)
	}
	eng := NewMapReduce(MapReduceConfig{Workers: 2})
	out, _, err := eng.Run(mapReduceCountSpec(), NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if out[k] != 25 {
			t.Fatalf("bucket %d = %v", k, out[k])
		}
	}
}
