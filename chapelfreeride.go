// Package chapelfreeride is the public facade of the Chapel→FREERIDE
// reproduction: a Go implementation of the system described in "Translating
// Chapel to Use FREERIDE: A Case Study in Using an HPC Language for
// Data-Intensive Computing" (Ren, Agrawal, Chamberlain, Deitz — IPDPS 2011).
//
// The library has four layers, re-exported here for downstream users:
//
//   - The Chapel runtime analog (chapel types/values, ReduceScanOp, the
//     global-view Reduce) — write reductions the way the paper's Fig. 2/3
//     writes them.
//   - The translator (core) — linearization of nested Chapel structures
//     (Algorithms 1–2), the index-mapping algorithm (Algorithm 3), and
//     FREERIDE spec generation at the paper's three optimization levels.
//   - The FREERIDE middleware (freeride + robj + sched) — the multicore
//     generalized-reduction engine with explicit reduction objects.
//   - The Map-Reduce baseline (mapreduce) and data layer (dataset).
//
// An Engine is a session: its worker pool and object/scheduler pools
// persist across Runs (hand finished results back with Release to recycle
// their reduction objects) until Close tears it down.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	eng := chapelfreeride.NewEngine(chapelfreeride.EngineConfig{Threads: 4})
//	defer eng.Close()
//	spec := chapelfreeride.Spec{
//	    Object: chapelfreeride.ObjectSpec{Groups: 1, Elems: 1, Op: chapelfreeride.OpAdd},
//	    Reduction: func(args *chapelfreeride.ReductionArgs) error {
//	        var s float64
//	        for _, v := range args.Data { s += v }
//	        args.Accumulate(0, 0, s)
//	        return nil
//	    },
//	}
//	res, err := eng.Run(spec, chapelfreeride.NewMemorySource(matrix))
package chapelfreeride

import (
	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/mapreduce"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// FREERIDE middleware (paper §III, Table I).
type (
	// Engine executes generalized reductions over data sources.
	Engine = freeride.Engine
	// EngineConfig controls threads, sharing strategy, scheduling, split size.
	EngineConfig = freeride.Config
	// Spec is one reduction pass: the Table-I user functions.
	Spec = freeride.Spec
	// ObjectSpec is the reduction-object shape for reduction_object_alloc.
	ObjectSpec = freeride.ObjectSpec
	// ReductionArgs is reduction_args_t: one split plus the accumulate handle.
	ReductionArgs = freeride.ReductionArgs
	// BlockArgs is the fused (opt-3) split-granular variant of ReductionArgs.
	BlockArgs = freeride.BlockArgs
	// RunResult carries the merged reduction object and stats.
	RunResult = freeride.Result
	// RunStats is the engine's timing breakdown.
	RunStats = freeride.Stats
)

// NewEngine creates a FREERIDE engine.
func NewEngine(cfg EngineConfig) *Engine { return freeride.New(cfg) }

// DefaultSplitter is the middleware-provided splitter_t.
var DefaultSplitter = freeride.DefaultSplitter

// GlobalCombine merges results from several engine runs (all-to-one).
var GlobalCombine = freeride.GlobalCombine

// Reduction-object strategies and operators (internal/robj).
type (
	// RObjStrategy selects the shared-memory update technique.
	RObjStrategy = robj.Strategy
	// RObjOp is the cell combine operator.
	RObjOp = robj.Op
	// RObj is the reduction object itself.
	RObj = robj.Object
)

// Reduction-object strategy constants.
const (
	FullReplication      = robj.FullReplication
	FullLocking          = robj.FullLocking
	OptimizedFullLocking = robj.OptimizedFullLocking
	FixedLocking         = robj.FixedLocking
	AtomicCAS            = robj.AtomicCAS
)

// Cell operator constants.
const (
	OpAdd = robj.OpAdd
	OpMin = robj.OpMin
	OpMax = robj.OpMax
)

// Scheduling policies (internal/sched).
type SchedulerPolicy = sched.Policy

// Scheduler policy constants.
const (
	SchedStatic       = sched.Static
	SchedDynamic      = sched.Dynamic
	SchedGuided       = sched.Guided
	SchedWorkStealing = sched.WorkStealing
)

// Chapel runtime analog (paper §II).
type (
	// ChapelType is a Chapel type descriptor.
	ChapelType = chapel.Type
	// ChapelValue is a boxed Chapel runtime value.
	ChapelValue = chapel.Value
	// ChapelArray is a boxed Chapel array.
	ChapelArray = chapel.Array
	// ChapelRecord is a boxed Chapel record.
	ChapelRecord = chapel.Record
	// ChapelInt is a boxed Chapel int.
	ChapelInt = chapel.Int
	// ChapelReal is a boxed Chapel real.
	ChapelReal = chapel.Real
	// ReduceScanOp is the Fig. 2 reduction class interface.
	ReduceScanOp = chapel.ReduceScanOp
	// ChapelExpr is an iterable reduction input (arrays, A+B, ranges).
	ChapelExpr = chapel.Expr
)

// Chapel type constructors and reduction drivers.
var (
	IntType     = chapel.IntType
	RealType    = chapel.RealType
	BoolType    = chapel.BoolType
	ArrayType   = chapel.ArrayType
	RecordType  = chapel.RecordType
	NewArray    = chapel.NewArray
	NewRecord   = chapel.NewRecord
	RealArray   = chapel.RealArray
	ChapelOver  = chapel.Over
	Reduce      = chapel.Reduce
	Scan        = chapel.Scan
	NewSumOp    = chapel.NewSumOp
	NewMinOp    = chapel.NewMinOp
	NewMaxOp    = chapel.NewMaxOp
	NewMinLocOp = chapel.NewMinLocOp
)

// Translator (paper §IV — the primary contribution).
type (
	// OptLevel selects generated / opt-1 / opt-2 code shapes.
	OptLevel = core.OptLevel
	// ReductionClass is the declarative Chapel-side reduction.
	ReductionClass = core.ReductionClass
	// HotVar declares a frequently-accessed variable (opt-2 target).
	HotVar = core.HotVar
	// Translation is the compiled, executable output.
	Translation = core.Translation
	// Vec is the kernel's view of one element's real run.
	Vec = core.Vec
	// StateVec is the kernel's view of a hot variable.
	StateVec = core.StateVec
	// LinearizeMeta is the Fig. 6 metadata for Algorithm 3.
	LinearizeMeta = core.Meta
	// LinearBuffer is linearized storage (Algorithm 2 output).
	LinearBuffer = core.Buffer
)

// Optimization levels (paper §V).
const (
	OptNone = core.OptNone
	Opt1    = core.Opt1
	Opt2    = core.Opt2
	Opt3    = core.Opt3
)

// Translator entry points.
var (
	Translate     = core.Translate
	TranslateWith = core.TranslateWith
	Linearize     = core.Linearize
	Delinearize   = core.Delinearize
	MetaFor       = core.MetaFor
	// TranslateStreaming overlaps linearization with processing — the
	// paper's proposed pipelining (§V future work).
	TranslateStreaming = core.TranslateStreaming
	// EmitC renders the C a Chapel compiler would generate per opt level.
	EmitC = core.EmitC
	// ParseChapelDecls parses the Chapel declaration subset the paper's
	// figures use.
	ParseChapelDecls = chapel.ParseDecls
)

// Simulated cluster execution (FREERIDE's global combination phase).
type (
	// Cluster runs specs across simulated nodes with a global combine.
	Cluster = cluster.Cluster
	// ClusterConfig sets node count, per-node engine, transport, algorithm.
	ClusterConfig = cluster.Config
	// ClusterResult is the combined reduction outcome.
	ClusterResult = cluster.Result
)

// Cluster constructors and constants.
var NewCluster = cluster.New

// Cluster transport and combination-algorithm constants.
const (
	TransportInProcess = cluster.InProcess
	TransportTCP       = cluster.TCP
	CombineAllToOne    = cluster.AllToOne
	CombineTree        = cluster.Tree
)

// Data layer.
type (
	// Matrix is a dense row-major dataset.
	Matrix = dataset.Matrix
	// DataSource abstracts row access for the engine.
	DataSource = dataset.Source
)

// Data constructors and generators.
var (
	NewMatrix       = dataset.NewMatrix
	NewMemorySource = dataset.NewMemorySource
	OpenFileSource  = dataset.OpenFileSource
	WriteDataFile   = dataset.WriteFile
	ReadDataFile    = dataset.ReadFile
	GaussianMixture = dataset.GaussianMixture
	UniformMatrix   = dataset.UniformMatrix
)

// Applications (paper §V; apps package).
type (
	// AppVersion names an implementation variant (generated, opt-2, ...).
	AppVersion = apps.Version
	// KMeansConfig parameterizes k-means runs.
	KMeansConfig = apps.KMeansConfig
	// KMeansResult is a k-means run's output.
	KMeansResult = apps.KMeansResult
	// PCAConfig parameterizes PCA runs.
	PCAConfig = apps.PCAConfig
	// PCAResult is a PCA run's output.
	PCAResult = apps.PCAResult
)

// Application version constants.
const (
	VersionSeq          = apps.Seq
	VersionChapelNative = apps.ChapelNative
	VersionGenerated    = apps.Generated
	VersionOpt1         = apps.Opt1
	VersionOpt2         = apps.Opt2
	VersionOpt3         = apps.Opt3
	VersionManualFR     = apps.ManualFR
	VersionMapReduce    = apps.MapReduce
)

// Application entry points.
var (
	KMeans    = apps.KMeans
	PCA       = apps.PCA
	EM        = apps.EM
	Apriori   = apps.Apriori
	KNN       = apps.KNN
	Histogram = apps.Histogram
	BoxPoints = apps.BoxPoints
	BoxMatrix = apps.BoxMatrix
)

// Extension application configs and results.
type (
	// EMConfig parameterizes expectation-maximization runs.
	EMConfig = apps.EMConfig
	// EMResult is a fitted Gaussian mixture.
	EMResult = apps.EMResult
	// AprioriConfig parameterizes frequent-itemset mining.
	AprioriConfig = apps.AprioriConfig
	// AprioriResult lists frequent itemsets.
	AprioriResult = apps.AprioriResult
	// KNNConfig parameterizes k-nearest-neighbour classification.
	KNNConfig = apps.KNNConfig
	// HistogramConfig parameterizes histogram runs.
	HistogramConfig = apps.HistogramConfig
)

// NewPrefetchSource wraps a data source with the read-ahead cache.
var NewPrefetchSource = dataset.NewPrefetchSource

// MapReduceConfig configures the Phoenix-style baseline runtime.
type MapReduceConfig = mapreduce.Config

// NewMapReduce creates a Map-Reduce engine with int keys and float64
// values, the common data-mining shape; use the generic
// internal/mapreduce.New directly for other key/value types.
func NewMapReduce(cfg MapReduceConfig) *mapreduce.Engine[int, float64] {
	return mapreduce.New[int, float64](cfg)
}
